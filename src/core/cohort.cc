// Cohort lifecycle, frame dispatch, failure detection, and query answering.
#include "core/cohort.h"

#include <cstdarg>
#include <cstdio>

namespace vsr::core {

namespace {
// The buffer grants leases only when backup reads are on: with the option
// off no lease frames exist at all (DESIGN.md §14 determinism contract).
vr::CommBufferOptions BufferOptionsFor(const CohortOptions& o) {
  vr::CommBufferOptions b = o.buffer;
  b.lease_duration = o.backup_reads ? o.read_lease_duration : 0;
  return b;
}
}  // namespace

const char* StatusName(Status s) {
  switch (s) {
    case Status::kActive:
      return "active";
    case Status::kViewManager:
      return "view-manager";
    case Status::kUnderling:
      return "underling";
    case Status::kCrashed:
      return "crashed";
  }
  return "?";
}

Cohort::Cohort(host::Host& hst, net::Transport& network,
               Directory& directory, storage::StableStore& stable,
               GroupId group, Mid self, std::vector<Mid> configuration,
               CohortOptions options)
    : host_(hst),
      net_(network),
      directory_(directory),
      stable_(stable),
      options_(options),
      group_(group),
      self_(self),
      configuration_(std::move(configuration)),
      store_(hst),
      buffer_(
          hst, BufferOptionsFor(options),
          [this](Mid to, const vr::BufferBatchMsg& b) { SendMsg(to, b); },
          [this] {
            // §3 footnote 1: an abandoned force means a communication
            // failure — switch to running the view change algorithm.
            if (status_ == Status::kActive) BecomeViewManager();
          },
          [this](Mid backup) { ServeSnapshot(backup); },
          [this](Mid backup, std::uint64_t stable_ts) {
            SendLeaseGrant(backup, stable_ts);
          }),
      snap_server_(
          hst, options.snapshot,
          [this](Mid to, const vr::SnapshotChunkMsg& m) { SendMsg(to, m); }),
      elog_(hst, stable, options.event_log,
            "elog/" + std::to_string(self), self),
      reply_waiters_(hst.timers()),
      prepare_waiters_(hst.timers()),
      commit_waiters_(hst.timers()),
      query_waiters_(hst.timers()),
      probe_waiters_(hst.timers()),
      bool_waiters_(hst.timers()),
      tasks_(hst.timers()) {
  net_.Register(self_, this);
  // Identity is persisted at creation (§4.2: "mymid, configuration, and
  // mygroupid ... are stored on stable storage when the cohort is first
  // created"). These writes are off the critical path.
  wire::Writer w;
  w.U64(group_);
  w.U32(self_);
  w.Vector(configuration_, [&](Mid m) { w.U32(m); });
  stable_.ForceWrite("identity/" + std::to_string(self_), w.Take(), nullptr,
                     self_);
}

Cohort::~Cohort() {
  // Tear down exactly like a crash so no timer or coroutine outlives us.
  if (status_ != Status::kCrashed) Crash();
}

void Cohort::Trace(const char* fmt, ...) {
  auto& tracer = host_.tracer();
  if (!tracer.Enabled(host::TraceLevel::kDebug)) return;
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  char tag[64];
  std::snprintf(tag, sizeof(tag), "cohort/%u(g%llu,%s)", self_,
                static_cast<unsigned long long>(group_),
                StatusName(status_));
  tracer.Log(host_.Now(), host::TraceLevel::kDebug, tag, "%s", buf);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void Cohort::Start() {
  status_ = Status::kUnderling;
  up_to_date_ = true;  // a fresh cohort's (empty) gstate is meaningful
  net_.SetNodeUp(self_, true);
  SendPings();  // self-arms the periodic ping chain
  fd_timer_ = host_.timers().After(options_.fd_check_interval,
                                     [this] { CheckLiveness(); });
  ArmUnderlingTimer();
  ArmQueryTimer();
}

void Cohort::ResetVolatileState() {
  buffer_.Stop();
  snap_server_.Stop();
  ClearSnapshotSink();
  ResetShardPull(false);
  tasks_.DestroyAll();
  store_.Clear();
  outcomes_.Clear();
  history_.Clear();
  cur_view_ = View{};
  cur_viewid_ = ViewId{};
  max_viewid_ = ViewId{};
  accepts_.clear();
  pending_records_.clear();
  batch_stash_.clear();
  batch_decoder_.Reset();
  applied_ts_ = 0;
  adopting_ = false;
  log_recovered_ = false;
  recovered_crash_viewid_ = ViewId{};
  log_replay_active_ = false;
  rejoin_pending_ = false;
  call_dedup_.clear();
  prepared_.clear();
  prepared_siblings_.clear();
  pending_commits_.clear();
  querying_.clear();
  txn_activity_.clear();
  RevokeLease();
  lease_grant_seq_ = 0;
  object_commit_vs_.clear();
  commit_vs_floor_ = Viewstamp{};
  for (auto& [dest, timer] : decision_timers_) host_.timers().Cancel(timer);
  decision_timers_.clear();
  decision_queue_.clear();
  dead_subs_by_txn_.clear();
  external_txns_.clear();
  committing_external_.clear();
  active_txns_.clear();
  cache_.clear();
  last_heard_.clear();
  ++start_view_epoch_;  // invalidates in-flight stable-storage callbacks
  auto& sched = host_.timers();
  sched.Cancel(invite_timer_);
  sched.Cancel(underling_timer_);
  sched.Cancel(ping_timer_);
  sched.Cancel(fd_timer_);
  sched.Cancel(query_timer_);
  sched.Cancel(deferred_vc_timer_);
  sched.Cancel(ack_timer_);
  sched.Cancel(rejoin_timer_);
  invite_timer_ = underling_timer_ = ping_timer_ = fd_timer_ = query_timer_ =
      deferred_vc_timer_ = ack_timer_ = rejoin_timer_ = host::kNoTimer;
}

void Cohort::Crash() {
  Trace("crash");
  ResetVolatileState();
  status_ = Status::kCrashed;
  net_.SetNodeUp(self_, false);
  // The log's in-memory batch and any in-flight stable writes die with us:
  // a force still pending (log segment, viewid) must never land after the
  // crash (DESIGN.md §10 — the durable image is a prefix of what was
  // issued).
  elog_.Crash();
  stable_.DropPending(self_);
}

void Cohort::Recover() {
  Trace("recover");
  net_.SetNodeUp(self_, true);
  // Volatile state is gone; cur_viewid survives on stable storage (§4.2).
  up_to_date_ = false;
  cur_viewid_ = ViewId{};
  if (auto bytes = stable_.Read("viewid/" + std::to_string(self_))) {
    wire::Reader r(*bytes);
    ViewId vid = ViewId::Decode(r);
    if (r.ok()) cur_viewid_ = vid;
  }
  max_viewid_ = cur_viewid_;
  status_ = Status::kUnderling;  // alive again; the view change runs next
  SendPings();  // self-arms the periodic ping chain
  fd_timer_ = host_.timers().After(options_.fd_check_interval,
                                     [this] { CheckLiveness(); });
  ArmQueryTimer();

  // DESIGN.md §10: replay the durable event log before going amnesiac. The
  // replayed state is a lower bound on what we had acknowledged (the log is
  // write-behind), so we come back as crashed-WITH-state: invitations get a
  // recovered acceptance whose viewid ceiling is the durable viewid (which
  // may exceed the replayed view when the last checkpoint never landed).
  const ViewId stable_viewid = cur_viewid_;
  if (elog_.enabled() && RecoverFromLog()) {
    up_to_date_ = true;
    log_recovered_ = true;
    recovered_crash_viewid_ = std::max(stable_viewid, cur_viewid_);
    max_viewid_ = std::max(max_viewid_, cur_viewid_);
    ++stats_.log_recoveries;
    Trace("log recovery: view <%llu.%u> applied ts %llu",
          static_cast<unsigned long long>(cur_viewid_.counter),
          cur_view_.primary, static_cast<unsigned long long>(applied_ts_));
    // A fresh generation supersedes any torn tail the replay rejected.
    LogCheckpoint(applied_ts_);
    if (cur_view_.primary == self_) {
      // The old primary's communication buffer died with it: it must not
      // resume the view unilaterally ("if it has just recovered from a
      // crash, it initiates a view change") — but it does so carrying its
      // replayed state.
      BecomeViewManager();
      return;
    }
    // Rejoin the replayed view as an active backup at viewstamp
    // <cur_viewid_, applied_ts_>; the primary rewinds our cursor and
    // restreams (or snapshots) the missing tail. Grace-stamp the view
    // members so the failure detector gives the rejoin a liveness window
    // before declaring anyone dead.
    for (Mid m : cur_view_.Members()) last_heard_[m] = host_.Now();
    status_ = Status::kActive;
    rejoin_pending_ = true;
    rejoin_epoch_ =
        std::max(rejoin_epoch_ + 1, static_cast<std::uint64_t>(host_.Now()));
    SendRejoinAck();
    return;
  }
  // "if it has just recovered from a crash, it initiates a view change."
  BecomeViewManager();
}

void Cohort::RecoverDiskless() {
  Trace("recover diskless");
  // The log device is gone; the tiny §4.2 stable state (identity + viewid)
  // is modeled as surviving — without a truthful viewid ceiling a recovered
  // cohort could admit view formations that lost forced events.
  elog_.Erase();
  Recover();
}

// ---------------------------------------------------------------------------
// Failure detection (§4: "Cohorts send periodic 'I'm Alive' messages")
// ---------------------------------------------------------------------------

void Cohort::SendPings() {
  for (Mid peer : configuration_) {
    if (peer == self_) continue;
    SendMsg(peer, vr::PingMsg{group_, self_});
  }
  ping_timer_ = host_.timers().After(options_.ping_interval,
                                       [this] { SendPings(); });
}

void Cohort::NoteAlive(Mid peer) { last_heard_[peer] = host_.Now(); }

void Cohort::CheckLiveness() {
  fd_timer_ = host_.timers().After(options_.fd_check_interval,
                                     [this] { CheckLiveness(); });
  if (status_ != Status::kActive) return;

  const host::Time now = host_.Now();

  std::vector<Mid> alive;
  for (Mid m : configuration_) {
    if (m == self_) {
      alive.push_back(m);
      continue;
    }
    auto it = last_heard_.find(m);
    if (it != last_heard_.end() && now - it->second <= options_.liveness_timeout) {
      alive.push_back(m);
    }
  }

  bool view_member_dead = false;
  for (Mid m : cur_view_.Members()) {
    if (std::find(alive.begin(), alive.end(), m) == alive.end()) {
      view_member_dead = true;
    }
  }
  bool outsider_alive = false;
  for (Mid m : alive) {
    if (!cur_view_.Contains(m)) outsider_alive = true;
  }
  if (!view_member_dead && !outsider_alive) {
    // Condition cleared (e.g. a ping was merely delayed): stand down.
    host_.timers().Cancel(deferred_vc_timer_);
    deferred_vc_timer_ = host::kNoTimer;
    return;
  }

  // §4.1 optimization: an active primary that still holds a sub-majority may
  // adjust its view unilaterally instead of running the full protocol.
  if (options_.unilateral_view_tweaks && IsActivePrimary()) {
    MaybeUnilateralTweak(alive);
    return;
  }

  // §4.1 policy to limit concurrent managers: cohort k defers in proportion
  // to its configuration rank; the highest-priority live cohort moves first.
  std::size_t rank = 0;
  for (std::size_t i = 0; i < configuration_.size(); ++i) {
    if (configuration_[i] == self_) rank = i;
  }
  // The current primary has top priority if it is the one reacting.
  if (cur_view_.primary == self_) rank = 0;
  if (rank == 0) {
    BecomeViewManager();
    return;
  }
  // Defer: if a higher-priority cohort handles it, we will receive its
  // invitation (and leave the active state) before this timer fires.
  if (deferred_vc_timer_ != host::kNoTimer) return;  // already counting down
  const ViewId armed_view = cur_viewid_;
  deferred_vc_timer_ = host_.timers().After(
      static_cast<host::Duration>(rank) * options_.manager_stagger,
      [this, armed_view] {
        deferred_vc_timer_ = host::kNoTimer;
        if (status_ == Status::kActive && cur_viewid_ == armed_view) {
          BecomeViewManager();
        }
      });
}

// ---------------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------------

void Cohort::OnFrame(const net::Frame& frame) {
  if (status_ == Status::kCrashed) return;
  const bool from_peer =
      std::find(configuration_.begin(), configuration_.end(), frame.from) !=
      configuration_.end();
  if (from_peer) NoteAlive(frame.from);
  // Intra-group protocol messages (view change, buffer replication) are
  // only meaningful from the group's own cohorts; the configuration is
  // fixed at creation (§2), so anything else is a stray or malformed frame.
  // Snapshot chunks/acks are NOT on this list: the §9 machinery doubles as
  // the shard bulk-move primitive (DESIGN.md §11), whose transfers cross
  // group boundaries — they are gated per-case below instead.
  switch (static_cast<vr::MsgType>(frame.type)) {
    case vr::MsgType::kInvite:
    case vr::MsgType::kAccept:
    case vr::MsgType::kInitView:
    case vr::MsgType::kBufferBatch:
    case vr::MsgType::kBufferAck:
    case vr::MsgType::kLeaseGrant:
      if (!from_peer) return;
      break;
    default:
      break;
  }
  wire::Reader r(frame.payload);
  switch (static_cast<vr::MsgType>(frame.type)) {
    case vr::MsgType::kPing: {
      (void)vr::PingMsg::Decode(r);
      break;  // liveness noted above
    }
    case vr::MsgType::kInvite: {
      auto m = vr::InviteMsg::Decode(r);
      if (r.ok() && m.group == group_) OnInvite(m);
      break;
    }
    case vr::MsgType::kAccept: {
      auto m = vr::AcceptMsg::Decode(r);
      if (r.ok() && m.group == group_) OnAccept(m);
      break;
    }
    case vr::MsgType::kInitView: {
      auto m = vr::InitViewMsg::Decode(r);
      if (r.ok() && m.group == group_) OnInitView(m);
      break;
    }
    case vr::MsgType::kBufferBatch: {
      auto m = vr::BufferBatchMsg::Decode(r, &batch_decoder_);
      if (r.ok() && m.group == group_) OnBufferBatch(m);
      break;
    }
    case vr::MsgType::kBufferAck: {
      auto m = vr::BufferAckMsg::Decode(r);
      if (r.ok() && m.group == group_ && IsActivePrimary()) buffer_.OnAck(m);
      break;
    }
    case vr::MsgType::kSnapshotChunk: {
      auto m = vr::SnapshotChunkMsg::Decode(r);
      if (!r.ok()) break;
      if (m.group == group_) {
        // Intra-group catch-up transfer: only our own primary streams these.
        if (from_peer) OnSnapshotChunk(m);
      } else {
        // Chunks of a cross-group shard pull, stamped with the SOURCE
        // group's id; OnShardChunk validates them against the active pull.
        OnShardChunk(m);
      }
      break;
    }
    case vr::MsgType::kSnapshotAck: {
      auto m = vr::SnapshotAckMsg::Decode(r);
      // Acks for shard transfers come from the pulling group's primary —
      // not a peer — carrying our group id copied from the chunks; the
      // server validates viewid/vs/offset per registered transfer.
      if (r.ok() && m.group == group_ && IsActivePrimary()) OnSnapshotAck(m);
      break;
    }
    case vr::MsgType::kCall: {
      auto m = vr::CallMsg::Decode(r);
      if (r.ok() && m.group == group_) OnCall(m);
      break;
    }
    case vr::MsgType::kReply: {
      auto m = vr::ReplyMsg::Decode(r);
      if (r.ok()) reply_waiters_.Fulfill(m.call_id, std::move(m));
      break;
    }
    case vr::MsgType::kPrepare: {
      auto m = vr::PrepareMsg::Decode(r);
      if (r.ok() && m.group == group_) OnPrepare(m);
      break;
    }
    case vr::MsgType::kPrepareReply: {
      auto m = vr::PrepareReplyMsg::Decode(r);
      if (!r.ok()) break;
      auto it = prepare_corr_.find({m.aid, m.from_group});
      if (it != prepare_corr_.end()) {
        prepare_waiters_.Fulfill(it->second, std::move(m));
      }
      break;
    }
    case vr::MsgType::kCommit: {
      auto m = vr::CommitMsg::Decode(r);
      if (r.ok() && m.group == group_) OnCommit(m);
      break;
    }
    case vr::MsgType::kCommitDone: {
      auto m = vr::CommitDoneMsg::Decode(r);
      if (!r.ok()) break;
      auto it = commit_corr_.find({m.aid, m.from_group});
      if (it != commit_corr_.end()) {
        commit_waiters_.Fulfill(it->second, std::move(m));
      }
      break;
    }
    case vr::MsgType::kAbort: {
      auto m = vr::AbortMsg::Decode(r);
      if (r.ok() && m.group == group_) OnAbort(m);
      break;
    }
    case vr::MsgType::kAbortSub: {
      auto m = vr::AbortSubMsg::Decode(r);
      if (r.ok() && m.group == group_) OnAbortSub(m);
      break;
    }
    case vr::MsgType::kQuery: {
      auto m = vr::QueryMsg::Decode(r);
      if (r.ok()) AnswerQuery(m);
      break;
    }
    case vr::MsgType::kQueryReply: {
      auto m = vr::QueryReplyMsg::Decode(r);
      if (!r.ok()) break;
      auto it = query_corr_.find(m.aid);
      if (it != query_corr_.end()) {
        query_waiters_.Fulfill(it->second, std::move(m));
      }
      break;
    }
    case vr::MsgType::kProbe: {
      auto m = vr::ProbeMsg::Decode(r);
      if (r.ok() && m.group == group_) OnProbe(m);
      break;
    }
    case vr::MsgType::kProbeReply: {
      auto m = vr::ProbeReplyMsg::Decode(r);
      if (r.ok()) OnProbeReply(m);
      break;
    }
    case vr::MsgType::kBeginTxn: {
      auto m = vr::BeginTxnMsg::Decode(r);
      if (r.ok() && m.group == group_) OnBeginTxn(m);
      break;
    }
    case vr::MsgType::kBeginTxnReply:
    case vr::MsgType::kCommitReqReply: {
      // Consumed by client::UnreplicatedClient, not by cohorts.
      break;
    }
    case vr::MsgType::kCommitReq: {
      auto m = vr::CommitReqMsg::Decode(r);
      if (r.ok() && m.group == group_) OnCommitReq(m);
      break;
    }
    case vr::MsgType::kAbortReq: {
      auto m = vr::AbortReqMsg::Decode(r);
      if (r.ok() && m.group == group_) OnAbortReq(m);
      break;
    }
    case vr::MsgType::kShardPull: {
      auto m = vr::ShardPullMsg::Decode(r);
      if (r.ok() && m.group == group_) OnShardPull(m);
      break;
    }
    case vr::MsgType::kLeaseGrant: {
      auto m = vr::LeaseGrantMsg::Decode(r);
      if (r.ok() && m.group == group_) OnLeaseGrant(m);
      break;
    }
    case vr::MsgType::kBackupRead: {
      auto m = vr::BackupReadMsg::Decode(r);
      if (r.ok() && m.group == group_) OnBackupRead(m);
      break;
    }
    case vr::MsgType::kBackupReadReply: {
      // Consumed by client::ReadClient, not by cohorts.
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Queries (§3.4)
// ---------------------------------------------------------------------------

TxnOutcome Cohort::LocalOutcome(Aid aid) const {
  TxnOutcome o = outcomes_.Lookup(aid);
  if (o != TxnOutcome::kUnknown) return o;
  if (aid.coordinator_group == group_) {
    if (active_txns_.count(aid) != 0) return TxnOutcome::kActive;
    // A coordinator view change aborts the group's in-flight transactions
    // (§3.1): if our current view is newer than the transaction's and we
    // have no commit record for it, it is dead.
    if (IsActivePrimary() && up_to_date_ && cur_viewid_ > aid.view) {
      return TxnOutcome::kAborted;
    }
  }
  return TxnOutcome::kUnknown;
}

void Cohort::AnswerQuery(const vr::QueryMsg& m) {
  // "we allow any cohort to respond to a query whenever it knows the
  //  answer" — backups answer from their outcome tables too.
  vr::QueryReplyMsg reply;
  reply.aid = m.aid;
  reply.outcome = LocalOutcome(m.aid);
  SendMsg(m.reply_to, reply);
}

}  // namespace vsr::core
