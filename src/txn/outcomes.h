// Transaction outcome bookkeeping, backing §3.4's query processing.
//
// Every cohort — primary or backup — records the outcomes it learns from
// event records, so that "any cohort [can] respond to a query whenever it
// knows the answer". The table travels in the gstate snapshot of a newview
// record so the knowledge survives view changes.
#pragma once

#include <cstdint>
#include <map>

#include "vr/messages.h"
#include "vr/types.h"
#include "wire/buffer.h"

namespace vsr::txn {

class OutcomeTable {
 public:
  void RecordCommitted(vr::Aid aid) { outcomes_[aid] = vr::TxnOutcome::kCommitted; }
  void RecordAborted(vr::Aid aid) {
    // A commit decision is final; a late/duplicate abort must not overwrite.
    auto [it, inserted] =
        outcomes_.emplace(aid, vr::TxnOutcome::kAborted);
    (void)it;
    (void)inserted;
  }

  // §3.1: the "done" record marks that every participant acknowledged the
  // commit; nobody will ever query this transaction again, so its outcome
  // entry can be garbage-collected.
  void RecordDone(vr::Aid aid) { outcomes_.erase(aid); }

  vr::TxnOutcome Lookup(vr::Aid aid) const {
    auto it = outcomes_.find(aid);
    if (it == outcomes_.end()) return vr::TxnOutcome::kUnknown;
    return it->second;
  }

  std::size_t size() const { return outcomes_.size(); }
  void Clear() { outcomes_.clear(); }

  void Snapshot(wire::Writer& w) const {
    w.U32(static_cast<std::uint32_t>(outcomes_.size()));
    for (const auto& [aid, outcome] : outcomes_) {
      aid.Encode(w);
      w.U8(static_cast<std::uint8_t>(outcome));
    }
  }
  void Restore(wire::Reader& r) {
    outcomes_.clear();
    const std::uint32_t n = r.U32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      vr::Aid aid = vr::Aid::Decode(r);
      std::uint8_t o = r.U8();
      if (o > 3) r.MarkBad();
      outcomes_[aid] = static_cast<vr::TxnOutcome>(o);
    }
  }

  std::uint64_t committed_count() const {
    std::uint64_t n = 0;
    for (const auto& [aid, o] : outcomes_) {
      if (o == vr::TxnOutcome::kCommitted) ++n;
    }
    return n;
  }

 private:
  std::map<vr::Aid, vr::TxnOutcome> outcomes_;
};

}  // namespace vsr::txn
