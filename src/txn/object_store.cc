#include "txn/object_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vsr::txn {

bool ObjectStore::LockCompatible(const Object& obj, Aid aid,
                                 LockMode mode) const {
  for (const LockHolder& h : obj.holders) {
    if (h.aid == aid) continue;  // own locks never conflict
    if (mode == LockMode::kWrite || h.mode == LockMode::kWrite) return false;
  }
  return true;
}

void ObjectStore::GrantLock(Object& obj, Aid aid, LockMode mode) {
  for (LockHolder& h : obj.holders) {
    if (h.aid == aid) {
      // Upgrade read → write; never downgrade.
      if (mode == LockMode::kWrite) h.mode = LockMode::kWrite;
      return;
    }
  }
  obj.holders.push_back(LockHolder{aid, mode});
}

bool ObjectStore::TryAcquire(const std::string& uid, Aid aid, LockMode mode) {
  Object& obj = objects_[uid];
  if (!LockCompatible(obj, aid, mode)) return false;
  GrantLock(obj, aid, mode);
  touched_[aid].insert(uid);
  ++stats_.acquisitions;
  return true;
}

void ObjectStore::Acquire(const std::string& uid, Aid aid, LockMode mode,
                          host::Duration timeout,
                          std::function<void(bool)> done) {
  if (TryAcquire(uid, aid, mode)) {
    done(true);
    return;
  }
  ++stats_.waits;
  const std::uint64_t id = next_waiter_id_++;
  host::TimerId timer = host_.timers().After(timeout, [this, uid, id] {
    auto qit = waiters_.find(uid);
    if (qit == waiters_.end()) return;
    auto& q = qit->second;
    auto wit = std::find_if(q.begin(), q.end(),
                            [&](const Waiter& w) { return w.id == id; });
    if (wit == q.end()) return;
    auto cb = std::move(wit->done);
    q.erase(wit);
    if (q.empty()) waiters_.erase(qit);
    ++stats_.wait_timeouts;
    cb(false);
  });
  waiters_[uid].push_back(Waiter{id, aid, mode, std::move(done), timer});
}

bool ObjectStore::HoldsLock(const std::string& uid, Aid aid,
                            LockMode at_least) const {
  auto it = objects_.find(uid);
  if (it == objects_.end()) return false;
  for (const LockHolder& h : it->second.holders) {
    if (h.aid != aid) continue;
    return at_least == LockMode::kRead || h.mode == LockMode::kWrite;
  }
  return false;
}

std::optional<std::string> ObjectStore::Read(const std::string& uid,
                                             Aid aid) const {
  auto it = objects_.find(uid);
  if (it == objects_.end()) return std::nullopt;
  const Object& obj = it->second;
  // Latest tentative version created by this transaction, if any.
  for (auto rit = obj.tentatives.rbegin(); rit != obj.tentatives.rend();
       ++rit) {
    if (rit->owner.aid == aid) return rit->value;
  }
  return obj.base;
}

std::optional<std::string> ObjectStore::ReadCommitted(
    const std::string& uid) const {
  auto it = objects_.find(uid);
  if (it == objects_.end()) return std::nullopt;
  return it->second.base;
}

bool ObjectStore::WriteTentative(const std::string& uid, SubAid sub,
                                 std::string value) {
  if (!HoldsLock(uid, sub.aid, LockMode::kWrite)) return false;
  Object& obj = objects_[uid];
  // One tentative version per subaction: overwrite in place.
  for (auto rit = obj.tentatives.rbegin(); rit != obj.tentatives.rend();
       ++rit) {
    if (rit->owner == sub) {
      rit->value = std::move(value);
      return true;
    }
  }
  obj.tentatives.push_back(TentativeVersion{sub, std::move(value)});
  return true;
}

void ObjectStore::ReleaseAllLocks(const std::string& uid, Object& obj,
                                  Aid aid) {
  std::erase_if(obj.holders, [&](const LockHolder& h) { return h.aid == aid; });
  (void)uid;
}

void ObjectStore::ReleaseReadLocks(Aid aid) {
  auto it = touched_.find(aid);
  if (it == touched_.end()) return;
  std::vector<std::string> released;
  for (const std::string& uid : it->second) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    const std::size_t before = oit->second.holders.size();
    std::erase_if(oit->second.holders, [&](const LockHolder& h) {
      return h.aid == aid && h.mode == LockMode::kRead;
    });
    if (oit->second.holders.size() != before) released.push_back(uid);
  }
  for (const std::string& uid : released) {
    it->second.erase(uid);
    PumpWaiters(uid);
  }
  if (it->second.empty()) touched_.erase(it);
}

std::vector<std::string> ObjectStore::Commit(Aid aid) {
  std::vector<std::string> installed;
  auto it = touched_.find(aid);
  ++stats_.commits;
  if (it == touched_.end()) return installed;
  std::set<std::string> uids = std::move(it->second);
  touched_.erase(it);
  for (const std::string& uid : uids) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    Object& obj = oit->second;
    // Install the latest tentative version of this transaction, if any.
    for (auto rit = obj.tentatives.rbegin(); rit != obj.tentatives.rend();
         ++rit) {
      if (rit->owner.aid == aid) {
        obj.base = rit->value;
        installed.push_back(uid);
        break;
      }
    }
    std::erase_if(obj.tentatives, [&](const TentativeVersion& t) {
      return t.owner.aid == aid;
    });
    ReleaseAllLocks(uid, obj, aid);
    PumpWaiters(uid);
  }
  return installed;
}

void ObjectStore::Abort(Aid aid) {
  ++stats_.aborts;
  // Fail any queued lock waits of this transaction first — even a
  // transaction holding no locks yet can be waiting for its first one.
  std::vector<std::function<void(bool)>> failed;
  for (auto& [wuid, q] : waiters_) {
    std::erase_if(q, [&](Waiter& w) {
      if (w.aid != aid) return false;
      host_.timers().Cancel(w.timer);
      failed.push_back(std::move(w.done));
      return true;
    });
  }
  std::erase_if(waiters_, [](const auto& kv) { return kv.second.empty(); });
  for (auto& cb : failed) cb(false);

  auto it = touched_.find(aid);
  if (it == touched_.end()) return;
  std::set<std::string> uids = std::move(it->second);
  touched_.erase(it);
  for (const std::string& uid : uids) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    Object& obj = oit->second;
    std::erase_if(obj.tentatives, [&](const TentativeVersion& t) {
      return t.owner.aid == aid;
    });
    ReleaseAllLocks(uid, obj, aid);
    PumpWaiters(uid);
  }
}

void ObjectStore::AbortSub(SubAid sub) {
  auto it = touched_.find(sub.aid);
  if (it == touched_.end()) return;
  for (const std::string& uid : it->second) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    std::erase_if(oit->second.tentatives,
                  [&](const TentativeVersion& t) { return t.owner == sub; });
  }
}

void ObjectStore::DiscardSubsExcept(Aid aid,
                                    const std::set<std::uint32_t>& live_subs) {
  auto it = touched_.find(aid);
  if (it == touched_.end()) return;
  for (const std::string& uid : it->second) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    std::erase_if(oit->second.tentatives, [&](const TentativeVersion& t) {
      return t.owner.aid == aid && live_subs.count(t.owner.sub) == 0;
    });
  }
}

bool ObjectStore::HasWriteLocks(Aid aid) const {
  auto it = touched_.find(aid);
  if (it == touched_.end()) return false;
  for (const std::string& uid : it->second) {
    auto oit = objects_.find(uid);
    if (oit == objects_.end()) continue;
    for (const LockHolder& h : oit->second.holders) {
      if (h.aid == aid && h.mode == LockMode::kWrite) return true;
    }
  }
  return false;
}

void ObjectStore::ApplyEffects(SubAid sub,
                               const std::vector<ObjectEffect>& effects) {
  for (const ObjectEffect& e : effects) {
    Object& obj = objects_[e.uid];
    GrantLock(obj, sub.aid, e.mode);
    touched_[sub.aid].insert(e.uid);
    if (e.tentative) {
      bool replaced = false;
      for (auto rit = obj.tentatives.rbegin(); rit != obj.tentatives.rend();
           ++rit) {
        if (rit->owner == sub) {
          rit->value = *e.tentative;
          replaced = true;
          break;
        }
      }
      if (!replaced) obj.tentatives.push_back(TentativeVersion{sub, *e.tentative});
    }
  }
}

void ObjectStore::PumpWaiters(const std::string& uid) {
  auto qit = waiters_.find(uid);
  if (qit == waiters_.end()) return;
  std::vector<std::function<void(bool)>> granted;
  auto& q = qit->second;
  while (!q.empty()) {
    Waiter& w = q.front();
    Object& obj = objects_[uid];
    if (!LockCompatible(obj, w.aid, w.mode)) break;  // FIFO: head blocks rest
    GrantLock(obj, w.aid, w.mode);
    touched_[w.aid].insert(uid);
    ++stats_.acquisitions;
    host_.timers().Cancel(w.timer);
    granted.push_back(std::move(w.done));
    q.pop_front();
  }
  if (q.empty()) waiters_.erase(qit);
  for (auto& cb : granted) cb(true);
}

std::size_t ObjectStore::lock_count() const {
  std::size_t n = 0;
  for (const auto& [uid, obj] : objects_) n += obj.holders.size();
  return n;
}

std::size_t ObjectStore::tentative_count() const {
  std::size_t n = 0;
  for (const auto& [uid, obj] : objects_) n += obj.tentatives.size();
  return n;
}

std::size_t ObjectStore::waiter_count() const {
  std::size_t n = 0;
  for (const auto& [uid, q] : waiters_) n += q.size();
  return n;
}

std::vector<std::string> ObjectStore::ObjectIds() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [uid, obj] : objects_) out.push_back(uid);
  return out;
}

std::vector<std::string> ObjectStore::TouchedBy(Aid aid) const {
  auto it = touched_.find(aid);
  if (it == touched_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<Aid> ObjectStore::ActiveTxns() const {
  std::vector<Aid> out;
  out.reserve(touched_.size());
  for (const auto& [aid, uids] : touched_) out.push_back(aid);
  return out;
}

void ObjectStore::Clear() {
  for (auto& [uid, q] : waiters_) {
    for (Waiter& w : q) host_.timers().Cancel(w.timer);
  }
  waiters_.clear();
  objects_.clear();
  touched_.clear();
}

void ObjectStore::Snapshot(wire::Writer& w) const {
  w.U32(static_cast<std::uint32_t>(objects_.size()));
  for (const auto& [uid, obj] : objects_) {
    w.String(uid);
    w.Bool(obj.base.has_value());
    if (obj.base) w.String(*obj.base);
    w.Vector(obj.holders, [&](const LockHolder& h) {
      h.aid.Encode(w);
      w.U8(static_cast<std::uint8_t>(h.mode));
    });
    w.Vector(obj.tentatives, [&](const TentativeVersion& t) {
      t.owner.Encode(w);
      w.String(t.value);
    });
  }
}

void ObjectStore::Restore(wire::Reader& r) {
  Clear();
  const std::uint32_t n = r.U32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string uid = r.String();
    Object obj;
    if (r.Bool()) obj.base = r.String();
    obj.holders = r.Vector<LockHolder>([&] {
      LockHolder h;
      h.aid = Aid::Decode(r);
      std::uint8_t m = r.U8();
      if (m > 1) r.MarkBad();
      h.mode = static_cast<LockMode>(m);
      return h;
    });
    obj.tentatives = r.Vector<TentativeVersion>([&] {
      TentativeVersion t;
      t.owner = SubAid::Decode(r);
      t.value = r.String();
      return t;
    });
    for (const LockHolder& h : obj.holders) touched_[h.aid].insert(uid);
    objects_[std::move(uid)] = std::move(obj);
  }
}

namespace {
bool InRange(const std::string& uid, const std::string& lo,
             const std::string& hi) {
  return lo <= uid && (hi.empty() || uid < hi);
}
}  // namespace

void ObjectStore::SnapshotRange(wire::Writer& w, const std::string& lo,
                                const std::string& hi) const {
  std::uint32_t count = 0;
  auto end = hi.empty() ? objects_.end() : objects_.lower_bound(hi);
  for (auto it = objects_.lower_bound(lo); it != end; ++it) {
    if (it->second.base) ++count;
  }
  w.U32(count);
  for (auto it = objects_.lower_bound(lo); it != end; ++it) {
    if (!it->second.base) continue;
    w.String(it->first);
    w.String(*it->second.base);
  }
}

void ObjectStore::InstallRange(wire::Reader& r) {
  const std::uint32_t n = r.U32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string uid = r.String();
    std::string value = r.String();
    if (!r.ok()) return;
    objects_[std::move(uid)].base = std::move(value);
  }
}

std::size_t ObjectStore::DropRange(const std::string& lo,
                                   const std::string& hi) {
  std::size_t dropped = 0;
  auto it = objects_.lower_bound(lo);
  while (it != objects_.end() && InRange(it->first, lo, hi)) {
    const Object& obj = it->second;
    if (obj.holders.empty() && obj.tentatives.empty() &&
        waiters_.find(it->first) == waiters_.end()) {
      it = objects_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

bool ObjectStore::RangeQuiescent(const std::string& lo,
                                 const std::string& hi) const {
  auto end = hi.empty() ? objects_.end() : objects_.lower_bound(hi);
  for (auto it = objects_.lower_bound(lo); it != end; ++it) {
    if (!it->second.holders.empty() || !it->second.tentatives.empty()) {
      return false;
    }
  }
  auto wend = hi.empty() ? waiters_.end() : waiters_.lower_bound(hi);
  for (auto it = waiters_.lower_bound(lo); it != wend; ++it) {
    if (!it->second.empty()) return false;
  }
  return true;
}

}  // namespace vsr::txn
