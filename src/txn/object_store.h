// The group state (`gstate`, Fig. 1): named atomic objects, each with a base
// version, a set of lockers, and tentative versions.
//
// "Each object has a base version of some type T ... A transaction modifies
//  a tentative version, which is discarded if the transaction aborts and
//  becomes the base version if it commits. Thus, in addition to its name and
//  base version, an object contains a set of lockers that identifies
//  transactions holding locks on the objects, the kinds of locks held, and
//  any tentative versions created for them."
//
// Transactions are synchronized by strict two-phase locking (§3) with read
// and write locks. Lock waits are asynchronous (the waiting procedure call
// is a suspended coroutine); a wait that exceeds its timeout fails, which
// the engine turns into a failed call — the paper-level resolution for
// deadlocks, which the paper itself leaves to the implementation.
//
// Tentative versions are keyed by SubAid so that aborting one subaction
// (a retried call attempt, §3.6) discards only that attempt's writes. Locks
// are keyed by the top-level Aid and — being strict 2PL — are held until the
// transaction commits or aborts (read locks may be released at prepare,
// Fig. 3 step 1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "host/host.h"
#include "vr/events.h"
#include "vr/types.h"
#include "wire/buffer.h"

namespace vsr::txn {

using vr::Aid;
using vr::LockMode;
using vr::ObjectEffect;
using vr::SubAid;

class ObjectStore {
 public:
  explicit ObjectStore(host::Host& hst) : host_(hst) {}
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;
  ~ObjectStore() { Clear(); }

  // -- Locking -----------------------------------------------------------

  // Acquires `mode` on `uid` for transaction `aid`, waiting up to `timeout`
  // behind conflicting holders. `done(granted)` runs synchronously if the
  // lock is free, else when granted or timed out. FIFO fairness with read
  // sharing; upgrades (read→write by the same transaction) wait for other
  // readers to drain.
  void Acquire(const std::string& uid, Aid aid, LockMode mode,
               host::Duration timeout, std::function<void(bool)> done);

  // Non-waiting acquisition; returns whether granted.
  bool TryAcquire(const std::string& uid, Aid aid, LockMode mode);

  bool HoldsLock(const std::string& uid, Aid aid, LockMode at_least) const;

  // -- Versions ----------------------------------------------------------

  // Value visible to `aid`: its own latest live tentative version, else the
  // base version. nullopt means the object does not exist (yet).
  std::optional<std::string> Read(const std::string& uid, Aid aid) const;

  // The committed base version, ignoring tentatives (for audits/examples).
  std::optional<std::string> ReadCommitted(const std::string& uid) const;

  // Creates/overwrites the tentative version owned by `sub`. Requires the
  // write lock (checked; returns false if not held).
  bool WriteTentative(const std::string& uid, SubAid sub, std::string value);

  // -- Transaction completion --------------------------------------------

  // Releases the read locks held by `aid` (done when the participant agrees
  // to prepare, Fig. 3).
  void ReleaseReadLocks(Aid aid);

  // Installs `aid`'s tentative versions as base and releases its locks.
  // Returns the uids whose base value actually changed (objects the
  // transaction wrote, not merely read) — the cohort stamps these with the
  // committing record's viewstamp for backup-read admission (DESIGN.md §14).
  std::vector<std::string> Commit(Aid aid);

  // Discards `aid`'s tentative versions and releases its locks.
  void Abort(Aid aid);

  // Discards only subaction `sub`'s tentative versions (§3.6). Locks stay
  // with the transaction (strict 2PL never requires early release).
  void AbortSub(SubAid sub);

  // Discards every tentative version of `aid` whose subaction number is not
  // in `live_subs`. Run by a participant when it prepares: the pset names
  // exactly the call attempts that are part of the committing transaction,
  // so versions from aborted attempts (whose abort-sub message may have been
  // lost) must not be installed at commit.
  void DiscardSubsExcept(Aid aid, const std::set<std::uint32_t>& live_subs);

  // True iff `aid` holds at least one write lock here — i.e. this
  // participant is not read-only for the transaction (Fig. 2/3).
  bool HasWriteLocks(Aid aid) const;

  // -- Backup-side application -------------------------------------------

  // Re-applies the effects of a completed call exactly as the primary
  // recorded them: grants locks unconditionally (the primary already
  // serialized them) and installs tentative versions.
  void ApplyEffects(SubAid sub, const std::vector<ObjectEffect>& effects);

  // -- Snapshot (the gstate payload of a newview record, §4) ---------------

  void Snapshot(wire::Writer& w) const;
  void Restore(wire::Reader& r);

  // -- Shard range operations (DESIGN.md §11) ------------------------------
  //
  // A shard image covers only the COMMITTED base versions of a key range
  // [lo, hi) (hi == "" means +infinity). Locks, waiters, and tentative
  // versions never move between groups: the rebalance handoff drains them at
  // the old owner instead (RangeQuiescent is the drain test).

  // Writes the committed base versions in [lo, hi): U32 count, then per
  // object its uid and value.
  void SnapshotRange(wire::Writer& w, const std::string& lo,
                     const std::string& hi) const;

  // Installs a shard image produced by SnapshotRange, overwriting base
  // versions. Idempotent: re-installing the same image is a no-op, and a
  // later image of the same range simply rewrites the bases.
  void InstallRange(wire::Reader& r);

  // Erases every object in [lo, hi) that carries no locks, tentatives, or
  // waiters; returns how many were dropped.
  std::size_t DropRange(const std::string& lo, const std::string& hi);

  // True iff no object in [lo, hi) has lock holders, tentative versions, or
  // queued waiters — i.e. no in-flight transaction still touches the range.
  bool RangeQuiescent(const std::string& lo, const std::string& hi) const;

  // -- Introspection -----------------------------------------------------

  std::size_t object_count() const { return objects_.size(); }
  std::size_t lock_count() const;
  std::size_t tentative_count() const;
  std::size_t waiter_count() const;
  std::vector<std::string> ObjectIds() const;

  // Objects on which `aid` holds any lock.
  std::vector<std::string> TouchedBy(Aid aid) const;

  // Transactions currently holding locks here (the janitor's scan set).
  std::vector<Aid> ActiveTxns() const;

  // Fails all waiters and clears all state (crash).
  void Clear();

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t waits = 0;
    std::uint64_t wait_timeouts = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct TentativeVersion {
    SubAid owner;
    std::string value;
  };
  struct LockHolder {
    Aid aid;
    LockMode mode;
  };
  struct Object {
    std::optional<std::string> base;
    std::vector<LockHolder> holders;
    std::vector<TentativeVersion> tentatives;  // in creation order
  };
  struct Waiter {
    std::uint64_t id;
    Aid aid;
    LockMode mode;
    std::function<void(bool)> done;
    host::TimerId timer;
  };

  bool LockCompatible(const Object& obj, Aid aid, LockMode mode) const;
  void GrantLock(Object& obj, Aid aid, LockMode mode);
  void ReleaseAllLocks(const std::string& uid, Object& obj, Aid aid);
  void PumpWaiters(const std::string& uid);
  void ForgetTouched(Aid aid, const std::string& uid);

  host::Host& host_;
  std::map<std::string, Object> objects_;
  std::map<std::string, std::deque<Waiter>> waiters_;
  std::map<Aid, std::set<std::string>> touched_;
  std::uint64_t next_waiter_id_ = 1;
  Stats stats_;
};

}  // namespace vsr::txn
