// The §4 view-formation decision as a pure function.
//
// "The correct rule for view formation is: a majority of cohorts have
//  accepted and
//    1. a majority of cohorts accepted normally, or
//    2. crash-viewid < normal-viewid, or
//    3. crash-viewid = normal-viewid and the primary of view normal-viewid
//       has done a normal acceptance of the invitation."
//
// "If the view can be formed, the cohort returning the largest viewstamp
//  (in a normal acceptance) is selected as the new primary; the old primary
//  of that view is selected if possible, since this causes minimal
//  disruption in the system."
//
// Extracted from the cohort so the conditions can be tested exhaustively in
// isolation (tests/view_formation_test.cc sweeps them against a brute-force
// oracle).
#pragma once

#include <optional>
#include <vector>

#include "vr/types.h"

namespace vsr::vr {

// One cohort's response to an invitation (§4): normal acceptances carry the
// cohort's current viewstamp and whether it was the primary of that
// viewstamp's view; crash acceptances carry only the stable-storage viewid.
struct Acceptance {
  Mid from = 0;
  bool crashed = false;
  Viewstamp last_vs;        // normal only
  bool was_primary = false; // normal only
  ViewId crash_viewid;      // crashed only
};

struct FormationResult {
  View view;
  // Diagnostics for tests/telemetry: which condition admitted the crashed
  // acceptances (0 = none present, 1..3 = the paper's conditions).
  int condition = 0;
};

// Returns the formed view, or nullopt if formation must fail (and the
// manager should retry later). `config_size` is the full configuration size.
std::optional<FormationResult> TryFormView(
    const std::vector<Acceptance>& accepts, std::size_t config_size);

}  // namespace vsr::vr
