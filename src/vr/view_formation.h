// The §4 view-formation decision as a pure function.
//
// "The correct rule for view formation is: a majority of cohorts have
//  accepted and
//    1. a majority of cohorts accepted normally, or
//    2. crash-viewid < normal-viewid, or
//    3. crash-viewid = normal-viewid and the primary of view normal-viewid
//       has done a normal acceptance of the invitation."
//
// "If the view can be formed, the cohort returning the largest viewstamp
//  (in a normal acceptance) is selected as the new primary; the old primary
//  of that view is selected if possible, since this causes minimal
//  disruption in the system."
//
// Condition 4 (DESIGN.md §10, not in the paper) extends the rule for
// log-recovered cohorts: a cohort that replayed a write-behind durable log
// answers as crashed-with-state — `crashed` AND `recovered`, carrying both
// the replayed viewstamp (last_vs, was_primary) and its stable-storage
// viewid ceiling (crash_viewid). Because the log trails the ack path, the
// replayed viewstamp is only a lower bound on what the cohort had
// acknowledged before the crash, so such an acceptance can never count as
// normal. When conditions 1–3 fail, formation is still sound if
//    4. the FULL configuration accepted, every acceptance bears state
//       (normal or recovered), and the best surviving viewstamp's view is
//       >= every acceptance's viewid ceiling
// — then every forced event reached at least one surviving image, except
// those acknowledged within the final un-flushed group-commit window, which
// no disk ever saw (the documented residual loss window of the write-behind
// trade; a §4.2 catastrophe with surviving disks shrinks from "group lost
// forever" to "at most the last flush interval of acknowledgements").
//
// Extracted from the cohort so the conditions can be tested exhaustively in
// isolation (tests/view_formation_test.cc sweeps them against a brute-force
// oracle).
#pragma once

#include <optional>
#include <vector>

#include "vr/types.h"

namespace vsr::vr {

// One cohort's response to an invitation (§4): normal acceptances carry the
// cohort's current viewstamp and whether it was the primary of that
// viewstamp's view; crash acceptances carry only the stable-storage viewid.
// Log-recovered acceptances (crashed && recovered) carry all of the above:
// the viewstamp fields describe the replayed state, crash_viewid the
// durable viewid ceiling.
struct Acceptance {
  Mid from = 0;
  bool crashed = false;
  bool recovered = false;   // crashed only: state replayed from a durable log
  Viewstamp last_vs;        // normal or recovered
  bool was_primary = false; // normal or recovered
  ViewId crash_viewid;      // crashed only
};

struct FormationResult {
  View view;
  // Diagnostics for tests/telemetry: which condition admitted the crashed
  // acceptances (0 = none present, 1..3 = the paper's conditions, 4 = the
  // full-configuration log-recovery extension).
  int condition = 0;
};

// Returns the formed view, or nullopt if formation must fail (and the
// manager should retry later). `config_size` is the full configuration size.
std::optional<FormationResult> TryFormView(
    const std::vector<Acceptance>& accepts, std::size_t config_size);

}  // namespace vsr::vr
