#include "vr/view_formation.h"

#include <algorithm>

namespace vsr::vr {
namespace {

// Builds the result once a primary-selection pool and target viewstamp are
// decided: primary = holder of `target` in the pool, preferring the old
// primary of that view, then the lowest mid (determinism).
FormationResult Finish(const std::vector<Acceptance>& accepts,
                       const Viewstamp& target, bool include_recovered,
                       int condition) {
  Mid primary = 0;
  bool chosen = false;
  bool chosen_was_primary = false;
  for (const Acceptance& a : accepts) {
    if (a.crashed && !(include_recovered && a.recovered)) continue;
    if (a.last_vs != target) continue;
    if (!chosen || (a.was_primary && !chosen_was_primary) ||
        (a.was_primary == chosen_was_primary && a.from < primary)) {
      primary = a.from;
      chosen = true;
      chosen_was_primary = a.was_primary;
    }
  }
  FormationResult result;
  result.condition = condition;
  result.view.primary = primary;
  for (const Acceptance& a : accepts) {
    if (a.from != primary) result.view.backups.push_back(a.from);
  }
  std::sort(result.view.backups.begin(), result.view.backups.end());
  return result;
}

// Condition 4 (view_formation.h): full configuration present, every
// acceptance state-bearing (normal or log-recovered), and the best
// surviving viewstamp reaches every acceptance's viewid ceiling.
std::optional<FormationResult> TryCondition4(
    const std::vector<Acceptance>& accepts, std::size_t config_size) {
  if (accepts.size() < config_size) return std::nullopt;
  Viewstamp best;
  bool have_best = false;
  bool any_recovered = false;
  for (const Acceptance& a : accepts) {
    if (a.crashed && !a.recovered) return std::nullopt;  // amnesiac: no bound
    if (a.crashed) any_recovered = true;
    if (!have_best || a.last_vs > best) best = a.last_vs;
    have_best = true;
  }
  // Without a recovered acceptance conditions 0–3 already decided (all
  // normal is condition 0); keep this path strictly additive.
  if (!any_recovered || !have_best) return std::nullopt;
  for (const Acceptance& a : accepts) {
    // A normal acceptance's ceiling is its own viewstamp's view, <= best by
    // construction; only recovered ceilings (stable viewid, which may exceed
    // the replayed view if the final checkpoint never hit the disk) bite.
    const ViewId ceiling = a.crashed ? a.crash_viewid : a.last_vs.view;
    if (best.view < ceiling) return std::nullopt;
  }
  return Finish(accepts, best, /*include_recovered=*/true, 4);
}

}  // namespace

std::optional<FormationResult> TryFormView(
    const std::vector<Acceptance>& accepts, std::size_t config_size) {
  const std::size_t majority = MajorityOf(config_size);
  if (accepts.size() < majority) return std::nullopt;

  std::size_t normal_count = 0;
  bool have_crashed = false;
  ViewId crash_viewid;
  Viewstamp normal_max;
  bool have_normal = false;
  for (const Acceptance& a : accepts) {
    if (a.crashed) {
      have_crashed = true;
      if (a.crash_viewid > crash_viewid) crash_viewid = a.crash_viewid;
    } else {
      ++normal_count;
      if (!have_normal || a.last_vs > normal_max) normal_max = a.last_vs;
      have_normal = true;
    }
  }
  // With no normal acceptance there is no state to initialize the view from
  // (all-crashed = the §4.2 catastrophe) — unless every crashed acceptance
  // replayed a durable log and condition 4 holds.
  if (!have_normal) return TryCondition4(accepts, config_size);
  const ViewId normal_viewid = normal_max.view;

  int condition = 0;
  if (have_crashed) {
    if (normal_count >= majority) {
      condition = 1;
    } else if (crash_viewid < normal_viewid) {
      condition = 2;
    } else if (crash_viewid == normal_viewid) {
      for (const Acceptance& a : accepts) {
        if (!a.crashed && a.was_primary && a.last_vs.view == normal_viewid) {
          condition = 3;
        }
      }
      if (condition != 3) return TryCondition4(accepts, config_size);
    } else {
      // crash_viewid > normal_viewid: information lost (unless recovered
      // logs cover the gap).
      return TryCondition4(accepts, config_size);
    }
  }

  return Finish(accepts, normal_max, /*include_recovered=*/false, condition);
}

}  // namespace vsr::vr
