#include "vr/view_formation.h"

#include <algorithm>

namespace vsr::vr {

std::optional<FormationResult> TryFormView(
    const std::vector<Acceptance>& accepts, std::size_t config_size) {
  const std::size_t majority = MajorityOf(config_size);
  if (accepts.size() < majority) return std::nullopt;

  std::size_t normal_count = 0;
  bool have_crashed = false;
  ViewId crash_viewid;
  Viewstamp normal_max;
  bool have_normal = false;
  for (const Acceptance& a : accepts) {
    if (a.crashed) {
      have_crashed = true;
      if (a.crash_viewid > crash_viewid) crash_viewid = a.crash_viewid;
    } else {
      ++normal_count;
      if (!have_normal || a.last_vs > normal_max) normal_max = a.last_vs;
      have_normal = true;
    }
  }
  // With no normal acceptance there is no state to initialize the view from
  // (all-crashed = the §4.2 catastrophe).
  if (!have_normal) return std::nullopt;
  const ViewId normal_viewid = normal_max.view;

  int condition = 0;
  if (have_crashed) {
    if (normal_count >= majority) {
      condition = 1;
    } else if (crash_viewid < normal_viewid) {
      condition = 2;
    } else if (crash_viewid == normal_viewid) {
      for (const Acceptance& a : accepts) {
        if (!a.crashed && a.was_primary && a.last_vs.view == normal_viewid) {
          condition = 3;
        }
      }
      if (condition != 3) return std::nullopt;
    } else {
      return std::nullopt;  // crash_viewid > normal_viewid: information lost
    }
  }

  // Primary selection: largest normal viewstamp; prefer the old primary of
  // that view among ties; break remaining ties by lowest mid (determinism).
  Mid primary = 0;
  bool chosen = false;
  bool chosen_was_primary = false;
  for (const Acceptance& a : accepts) {
    if (a.crashed || a.last_vs != normal_max) continue;
    if (!chosen || (a.was_primary && !chosen_was_primary) ||
        (a.was_primary == chosen_was_primary && a.from < primary)) {
      primary = a.from;
      chosen = true;
      chosen_was_primary = a.was_primary;
    }
  }

  FormationResult result;
  result.condition = condition;
  result.view.primary = primary;
  for (const Acceptance& a : accepts) {
    if (a.from != primary) result.view.backups.push_back(a.from);
  }
  std::sort(result.view.backups.begin(), result.view.backups.end());
  return result;
}

}  // namespace vsr::vr
