// Event records (§2): the units the primary streams to its backups through
// the communication buffer, in timestamp order.
//
// The correspondence the paper draws in §3.7: completed-call records are the
// data records a conventional system forces to stable storage before
// preparing; committing/committed/aborted/done records are their stable-
// storage counterparts; there is no prepare record (the history + pset
// replace it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vr/history.h"
#include "vr/types.h"
#include "wire/buffer.h"

namespace vsr::vr {

enum class LockMode : std::uint8_t {
  kRead = 0,
  kWrite = 1,
};

// One object touched by a completed call: which lock was taken and, for
// writes, the tentative version created (§3.2 "object-list").
struct ObjectEffect {
  std::string uid;
  LockMode mode = LockMode::kRead;
  std::optional<std::string> tentative;  // present iff mode == kWrite

  bool operator==(const ObjectEffect&) const = default;

  void Encode(wire::Writer& w) const {
    w.String(uid);
    w.U8(static_cast<std::uint8_t>(mode));
    w.Bool(tentative.has_value());
    if (tentative) w.String(*tentative);
  }
  static ObjectEffect Decode(wire::Reader& r) {
    ObjectEffect e;
    e.uid = r.String();
    std::uint8_t m = r.U8();
    if (m > 1) r.MarkBad();
    e.mode = static_cast<LockMode>(m);
    if (r.Bool()) e.tentative = r.String();
    return e;
  }
};

enum class EventType : std::uint8_t {
  kCompletedCall = 0,  // a remote call finished at this (server) group
  kCommitting = 1,     // coordinator decided commit; carries the plist
  kCommitted = 2,      // participant learned the transaction committed
  kAborted = 3,        // transaction aborted
  kDone = 4,           // coordinator: all participants acked the commit
  kAbortedSub = 5,     // a subaction (call attempt) was discarded (§3.6)
  kNewView = 6,        // first record of a view: view + history + gstate
  // Shard rebalancing (DESIGN.md §11): the bulk-copied image of a key range
  // pulled from another group, installed as committed base versions; and the
  // old owner's garbage-collection of a range whose move committed. Both
  // carry their payload in the gstate field (same wire layout as kNewView).
  kShardInstall = 7,
  kShardDrop = 8,
};

const char* EventTypeName(EventType t);

struct EventRecord {
  EventType type = EventType::kCompletedCall;
  // Timestamp assigned by CommBuffer::Add; 0 until then.
  std::uint64_t ts = 0;

  // kCompletedCall / kCommitting / kCommitted / kAborted / kDone / kAbortedSub
  SubAid sub_aid;
  // kCompletedCall: the objects read/written by the call.
  std::vector<ObjectEffect> effects;
  // kCompletedCall: the duplicate-suppression key, reply payload, and the
  // pset contributed by nested calls. Replicating these makes every cohort
  // able to re-answer a retransmitted call — the durable "connection
  // information" §3.1 assumes of the message delivery system.
  std::uint64_t call_seq = 0;
  std::vector<std::uint8_t> result;
  Pset nested_pset;
  // kCommitting: the non-read-only participants (phase-two recipients).
  std::vector<GroupId> plist;
  // kNewView payload.
  View view;
  History history;
  std::vector<std::uint8_t> gstate;

  static EventRecord CompletedCall(SubAid id, std::vector<ObjectEffect> fx,
                                   std::uint64_t call_seq = 0,
                                   std::vector<std::uint8_t> result = {},
                                   Pset nested_pset = {}) {
    EventRecord e;
    e.type = EventType::kCompletedCall;
    e.sub_aid = id;
    e.effects = std::move(fx);
    e.call_seq = call_seq;
    e.result = std::move(result);
    e.nested_pset = std::move(nested_pset);
    return e;
  }
  static EventRecord Committing(Aid aid, std::vector<GroupId> participants) {
    EventRecord e;
    e.type = EventType::kCommitting;
    e.sub_aid = SubAid{aid, 0};
    e.plist = std::move(participants);
    return e;
  }
  static EventRecord Committed(Aid aid) {
    EventRecord e;
    e.type = EventType::kCommitted;
    e.sub_aid = SubAid{aid, 0};
    return e;
  }
  static EventRecord Aborted(Aid aid) {
    EventRecord e;
    e.type = EventType::kAborted;
    e.sub_aid = SubAid{aid, 0};
    return e;
  }
  static EventRecord Done(Aid aid) {
    EventRecord e;
    e.type = EventType::kDone;
    e.sub_aid = SubAid{aid, 0};
    return e;
  }
  static EventRecord AbortedSub(SubAid id) {
    EventRecord e;
    e.type = EventType::kAbortedSub;
    e.sub_aid = id;
    return e;
  }
  bool operator==(const EventRecord&) const = default;

  static EventRecord NewView(View v, History h, std::vector<std::uint8_t> g) {
    EventRecord e;
    e.type = EventType::kNewView;
    e.view = std::move(v);
    e.history = std::move(h);
    e.gstate = std::move(g);
    return e;
  }
  // `payload` is the shard-image encoding (lo, hi, source group, range
  // bytes) built by the pulling primary; see Cohort::OnShardChunk.
  static EventRecord ShardInstall(std::vector<std::uint8_t> payload) {
    EventRecord e;
    e.type = EventType::kShardInstall;
    e.gstate = std::move(payload);
    return e;
  }
  // `payload` encodes just the dropped bounds (lo, hi).
  static EventRecord ShardDrop(std::vector<std::uint8_t> payload) {
    EventRecord e;
    e.type = EventType::kShardDrop;
    e.gstate = std::move(payload);
    return e;
  }

  void Encode(wire::Writer& w) const {
    w.U8(static_cast<std::uint8_t>(type));
    w.U64(ts);
    sub_aid.Encode(w);
    w.Vector(effects, [&](const ObjectEffect& e) { e.Encode(w); });
    w.U64(call_seq);
    w.Bytes(result);
    w.Vector(nested_pset, [&](const PsetEntry& p) { p.Encode(w); });
    w.Vector(plist, [&](GroupId g) { w.U64(g); });
    view.Encode(w);
    history.Encode(w);
    w.Bytes(gstate);
  }
  static EventRecord Decode(wire::Reader& r) {
    EventRecord e;
    std::uint8_t t = r.U8();
    if (t > static_cast<std::uint8_t>(EventType::kShardDrop)) r.MarkBad();
    e.type = static_cast<EventType>(t);
    e.ts = r.U64();
    e.sub_aid = SubAid::Decode(r);
    e.effects = r.Vector<ObjectEffect>([&] { return ObjectEffect::Decode(r); });
    e.call_seq = r.U64();
    e.result = r.Bytes();
    e.nested_pset = r.Vector<PsetEntry>([&] { return PsetEntry::Decode(r); });
    e.plist = r.Vector<GroupId>([&] { return r.U64(); });
    e.view = View::Decode(r);
    e.history = History::Decode(r);
    e.gstate = r.Bytes();
    return e;
  }

  // Size of this record's uncompressed wire encoding; drives the byte-budget
  // batch cut (CommBufferOptions::max_batch_bytes) and the event log's
  // group-commit byte threshold.
  std::size_t EncodedSize() const {
    wire::Writer w;
    Encode(w);
    return w.size();
  }

  std::string ToString() const;
};

}  // namespace vsr::vr
