#include "vr/comm_buffer.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vsr::vr {

CommBuffer::CommBuffer(host::Host& hst, CommBufferOptions options,
                       std::function<void(Mid, const BufferBatchMsg&)> send,
                       std::function<void()> on_force_failed,
                       std::function<void(Mid)> on_needs_snapshot,
                       std::function<void(Mid, std::uint64_t)> on_lease)
    : host_(hst),
      options_(options),
      send_(std::move(send)),
      on_force_failed_(std::move(on_force_failed)),
      on_needs_snapshot_(std::move(on_needs_snapshot)),
      on_lease_(std::move(on_lease)) {}

void CommBuffer::StartView(ViewId viewid, std::vector<Mid> backups,
                           std::size_t config_size, GroupId group, Mid self,
                           History* history) {
  Stop();
  active_ = true;
  viewid_ = viewid;
  group_ = group;
  self_ = self;
  backups_ = std::move(backups);
  sub_majority_ = SubMajorityOf(config_size);
  history_ = history;
  next_ts_ = 1;
  base_ts_ = 0;
  records_.clear();
  state_.clear();
  for (Mid b : backups_) {
    BackupState st;
    st.encoder = BatchEncoder(options_.dict_capacity);
    state_[b] = std::move(st);
  }
}

void CommBuffer::Stop() {
  active_ = false;
  host_.timers().Cancel(flush_timer_);
  host_.timers().Cancel(retransmit_timer_);
  host_.timers().Cancel(force_check_timer_);
  flush_timer_ = retransmit_timer_ = force_check_timer_ = host::kNoTimer;
  // Drop pending forces without invoking callbacks: the continuations belong
  // to coroutines the cohort is about to destroy anyway.
  forces_.clear();
  history_ = nullptr;
}

Viewstamp CommBuffer::Add(EventRecord record) {
  assert(active_);
  record.ts = next_ts_++;
  // "It atomically assigns the event a timestamp (advancing the timestamp
  //  and updating the history in the process)".
  history_->Advance(record.ts);
  records_.push_back(std::move(record));
  ++stats_.adds;
  stats_.buffer_high_water =
      std::max(stats_.buffer_high_water,
               static_cast<std::uint64_t>(records_.size()));
  ScheduleFlush(options_.flush_delay);
  return Viewstamp{viewid_, records_.back().ts};
}

void CommBuffer::ForceTo(Viewstamp vs, std::function<void(bool)> done) {
  ++stats_.forces;
  // "If the viewstamp is not for the current view it returns immediately."
  if (vs.view != viewid_) {
    ++stats_.forces_immediate;
    done(true);
    return;
  }
  // A stopped buffer never replicated these events: the caller must not
  // treat them as durable (the view change decides their fate).
  if (!active_) {
    ++stats_.forces_failed;
    done(false);
    return;
  }
  if (StableTs() >= vs.ts || sub_majority_ == 0) {
    ++stats_.forces_immediate;
    done(true);
    return;
  }
  forces_.push_back(PendingForce{vs.ts, std::move(done),
                                 host_.Now() + options_.force_timeout});
  if (force_check_timer_ == host::kNoTimer) {
    force_check_timer_ = host_.timers().After(
        options_.force_timeout, [this] { CheckForceTimeouts(); });
  }
  ScheduleFlush(0);
}

std::uint64_t CommBuffer::StableTs() const {
  if (backups_.empty() || sub_majority_ == 0) return next_ts_ - 1;
  std::vector<std::uint64_t> acks;
  acks.reserve(state_.size());
  for (const auto& [mid, st] : state_) acks.push_back(st.acked);
  std::sort(acks.begin(), acks.end(), std::greater<>());
  if (acks.size() < sub_majority_) return 0;
  return acks[sub_majority_ - 1];
}

std::uint64_t CommBuffer::AckedTs(Mid backup) const {
  auto it = state_.find(backup);
  return it == state_.end() ? 0 : it->second.acked;
}

const CodecStats* CommBuffer::encoder_stats(Mid backup) const {
  auto it = state_.find(backup);
  return it == state_.end() ? nullptr : &it->second.encoder.stats();
}

void CommBuffer::OnAck(const BufferAckMsg& ack) {
  if (!active_ || ack.viewid != viewid_) return;
  if (ack.group != group_) {
    ++stats_.acks_rejected;
    return;
  }
  auto it = state_.find(ack.from);
  if (it == state_.end()) {
    // Not a backup of this view (misrouted, or a stray configuration).
    ++stats_.acks_rejected;
    return;
  }
  // A corrupted or misrouted ack must not advance the watermark past what
  // was ever added: that could satisfy a force no backup actually saw.
  if (ack.ts > last_ts()) {
    ++stats_.acks_rejected;
    return;
  }
  ++stats_.acks_received;
  BackupState& st = it->second;
  bool rejoin_serviced = false;
  if (ack.rejoin) {
    if (ack.rejoin_epoch != 0 && ack.rejoin_epoch <= st.rejoin_epoch) {
      // Rejoin acks are retransmitted until the first batch arrives, so a
      // delayed or reordered duplicate of an epoch already serviced can
      // land after the backup has progressed past its replayed ts. Rewinding
      // again would void real progress and restream the tail redundantly —
      // service each recovery episode exactly once.
      ++stats_.rejoins_ignored;
    } else {
      // A log-recovered backup resumed at its replayed ts; anything it acked
      // beyond that before the crash is gone from its memory. Rewind both
      // cursors (even backwards — pre-crash acks are void) and resync the
      // codec; the tail restreams below, or a snapshot is served once the
      // rewound ack sits under the GC floor.
      ++stats_.rejoins;
      // max, not assignment: an epoch-0 (unspecified) rejoin is always
      // honored but must not lower the dedup floor for tagged episodes.
      st.rejoin_epoch = std::max(st.rejoin_epoch, ack.rejoin_epoch);
      st.acked = ack.ts;
      st.sent = ack.ts;
      st.encoder.ForceReset();
      st.state_transfer = false;
      st.deadline = 0;
      st.gap_resent_hi = 0;
      st.gap_deadline = 0;
      rejoin_serviced = true;
    }
  }
  const bool was_stalled = st.sent >= st.acked + options_.window;
  const bool progress = ack.ts > st.acked;
  if (progress) {
    st.acked = ack.ts;
    // An ack can overtake the cursor (e.g. the backup installed a snapshot
    // and rejoined far ahead of what was ever sent); never let the cursor
    // lag behind what is known received.
    if (st.sent < st.acked) st.sent = st.acked;
    if (st.acked >= st.gap_resent_hi) st.gap_resent_hi = 0;
    // Keep the encoder's rewind checkpoint in step with the ack so a
    // retransmission can continue the compression stream (§8.3) — must
    // happen before CollectGarbage releases the newly-acked records.
    st.encoder.AdvanceCheckpoint(st.acked, records_, base_ts_);
  }
  if (st.state_transfer && st.acked >= base_ts_) {
    // The snapshot is installed: the backup's ack re-entered the resident
    // range and it resumes the normal record stream. Its decoder state is
    // fresh, so the next send must open a new generation.
    st.state_transfer = false;
    st.encoder.ForceReset();
    st.deadline = 0;
    SendTo(ack.from);
  } else if (st.state_transfer && progress && on_needs_snapshot_) {
    // Installed, but GC outran the snapshot while it was in flight: the ack
    // moved yet still sits below the resident range. Serve a fresher one.
    on_needs_snapshot_(ack.from);
  }
  if (ack.codec_reset) st.encoder.ForceReset();
  // Only progress resets the stall deadline: a duplicate ack must not
  // postpone a legitimate retransmission forever.
  if (st.state_transfer || st.acked >= st.sent) {
    st.deadline = 0;
  } else if (progress) {
    st.deadline = host_.Now() + options_.retransmit_interval;
  }

  // Explicit gap request: the backup saw records beyond ack.ts + 1 and asks
  // precisely for the hole (ack.ts, gap_hi]. Resend it immediately — without
  // touching the cursor — instead of letting the deadline expire.
  if (ack.gap && !RouteThroughSnapshot(ack.from, st)) {
    // A repeated nack arriving after the previous gap resend's own deadline
    // means that resend was itself lost: lift the suppression so the hole
    // heals now instead of waiting out the full go-back-N deadline.
    if (st.gap_resent_hi != 0 && st.gap_deadline != 0 &&
        host_.Now() >= st.gap_deadline) {
      st.gap_resent_hi = 0;
    }
    const std::uint64_t lo = st.acked;
    const std::uint64_t hi = std::min(st.sent, ack.gap_hi);
    if (hi > lo && hi > st.gap_resent_hi) {
      ++stats_.gap_requests;
      stats_.records_retransmitted += hi - lo;
      st.gap_resent_hi = hi;
      st.gap_deadline = host_.Now() + options_.retransmit_interval / 2;
      st.deadline = host_.Now() + options_.retransmit_interval;
      SendRange(ack.from, lo, hi);
    }
  }

  // Pipelining: a backup that was window-stalled resumes the moment the ack
  // frees space (new records otherwise ride the next flush tick).
  if (was_stalled && st.sent < last_ts()) SendTo(ack.from);

  // A rejoining backup gets its tail immediately; SendTo routes it through
  // snapshot state transfer if the rewound ack fell below the GC floor.
  // (Ignored duplicate rejoins get nothing — their episode was serviced.)
  if (rejoin_serviced) SendTo(ack.from);

  // Read-lease renewal (DESIGN.md §14) rides the ack we just processed: no
  // dedicated timer, the grant is issued at most once per duration/8 per
  // backup — well inside the expiry for liveness, and frequent enough that
  // the granted stable watermark (which bounds what the backup may serve)
  // stays fresh under a write-heavy mix. A backup mid state transfer gets
  // no lease — its applied state is about to be replaced wholesale.
  if (options_.lease_duration > 0 && on_lease_ && !st.state_transfer &&
      host_.Now() >= st.lease_renew_at) {
    st.lease_renew_at = host_.Now() + options_.lease_duration / 8;
    ++stats_.leases_granted;
    on_lease_(ack.from, StableTs());
  }

  ArmRetransmitTimer();
  CollectGarbage();
  ResolveForces();
}

// Releases records every backup has acked — and, with snapshot catch-up
// enabled, records more than `window` below the sub-majority stable
// watermark even if a laggard has not: the laggard is then served a snapshot
// (RouteThroughSnapshot) instead of a record replay, so one dead backup
// bounds resident memory at O(window) rather than O(its lag). Safety is
// untouched: records_ is volatile replication plumbing; durable knowledge
// lives in the cohorts' gstates and the view-change newview record.
void CommBuffer::CollectGarbage() {
  if (state_.empty()) return;
  std::uint64_t watermark = last_ts();
  for (const auto& [mid, st] : state_) {
    watermark = std::min(watermark, st.acked);
  }
  if (options_.snapshot_catchup) {
    const std::uint64_t stable = StableTs();
    const std::uint64_t stable_floor =
        stable > options_.window ? stable - options_.window : 0;
    watermark = std::max(watermark, stable_floor);
  }
  if (watermark <= base_ts_) return;
  const std::size_t n = static_cast<std::size_t>(watermark - base_ts_);
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(n));
  base_ts_ = watermark;
  stats_.records_gced += n;
}

void CommBuffer::ResolveForces() {
  const std::uint64_t stable = StableTs();
  // Callbacks may add records / new forces; collect first, then run.
  std::vector<std::function<void(bool)>> ready;
  std::erase_if(forces_, [&](PendingForce& f) {
    if (f.ts <= stable) {
      ready.push_back(std::move(f.done));
      return true;
    }
    return false;
  });
  for (auto& cb : ready) cb(true);
}

void CommBuffer::CheckForceTimeouts() {
  force_check_timer_ = host::kNoTimer;
  if (!active_) return;
  const host::Time now = host_.Now();
  std::vector<std::function<void(bool)>> expired;
  host::Time next_deadline = 0;
  std::erase_if(forces_, [&](PendingForce& f) {
    if (f.deadline <= now) {
      expired.push_back(std::move(f.done));
      return true;
    }
    if (next_deadline == 0 || f.deadline < next_deadline) {
      next_deadline = f.deadline;
    }
    return false;
  });
  if (next_deadline != 0) {
    force_check_timer_ =
        host_.timers().At(next_deadline, [this] { CheckForceTimeouts(); });
  }
  if (!expired.empty()) {
    stats_.forces_failed += expired.size();
    for (auto& cb : expired) cb(false);
    // "If communication with some backups is impossible, the call of
    //  force-to will be abandoned, and the cohort will switch to running the
    //  view change algorithm."
    if (on_force_failed_) on_force_failed_();
  }
}

void CommBuffer::ScheduleFlush(host::Duration delay) {
  if (!active_) return;
  if (delay == 0) {
    host_.timers().Cancel(flush_timer_);
    flush_timer_ = host::kNoTimer;
    FlushNow();
    return;
  }
  if (flush_timer_ != host::kNoTimer) return;  // already scheduled
  flush_timer_ = host_.timers().After(delay, [this] {
    flush_timer_ = host::kNoTimer;
    FlushNow();
  });
}

void CommBuffer::FlushNow() {
  if (!active_) return;
  for (Mid b : backups_) SendTo(b);
  ArmRetransmitTimer();
}

// True when `backup` cannot be served from the resident records (its ack is
// below base_ts_, so its next needed record was GC'd): flips it into
// state-transfer mode and asks the owner to serve a snapshot. One callback
// per episode; chunk-level retransmission is the snapshot server's job.
bool CommBuffer::RouteThroughSnapshot(Mid backup, BackupState& st) {
  if (!options_.snapshot_catchup) return false;
  if (st.state_transfer) return true;
  if (st.acked >= base_ts_) return false;
  st.state_transfer = true;
  st.deadline = 0;
  st.gap_resent_hi = 0;
  st.gap_deadline = 0;
  ++stats_.snapshots_served;
  if (on_needs_snapshot_) on_needs_snapshot_(backup);
  return true;
}

// Advances `backup`'s send cursor: transmits every record past the cursor,
// in max_batch chunks, up to the in-flight window. Never re-sends.
void CommBuffer::SendTo(Mid backup) {
  auto it = state_.find(backup);
  if (it == state_.end()) return;
  BackupState& st = it->second;
  if (RouteThroughSnapshot(backup, st)) return;
  const std::uint64_t last = last_ts();
  while (st.sent < last) {
    const std::uint64_t limit = st.acked + options_.window;
    if (st.sent >= limit) {
      ++stats_.window_stalls;
      return;
    }
    const std::uint64_t lo = st.sent;
    const std::uint64_t hi =
        std::min({last, limit, lo + options_.max_batch});
    st.sent = hi;
    if (st.deadline == 0) {
      st.deadline = host_.Now() + options_.retransmit_interval;
    }
    SendRange(backup, lo, hi);
  }
}

// Transmits the records in (lo, hi], in max_batch chunks. lo is always at or
// above the GC watermark: a cursor never points below its backup's own ack,
// and a backup whose ack fell below the watermark is in state-transfer mode
// (RouteThroughSnapshot) and never reaches here.
void CommBuffer::SendRange(Mid backup, std::uint64_t lo, std::uint64_t hi) {
  assert(lo >= base_ts_ && hi <= last_ts());
  auto st = state_.find(backup);
  while (lo < hi) {
    std::uint64_t end = std::min(hi, lo + options_.max_batch);
    if (options_.max_batch_bytes > 0) {
      // Byte budget: cut the batch once the cumulative pre-compression
      // encoding reaches the target (never below one record).
      std::size_t bytes = 0;
      std::uint64_t cut = lo;
      while (cut < end) {
        bytes += records_[static_cast<std::size_t>(cut - base_ts_)]
                     .EncodedSize();
        ++cut;
        if (bytes >= options_.max_batch_bytes) break;
      }
      end = std::max(cut, lo + 1);
    }
    BufferBatchMsg batch;
    batch.group = group_;
    batch.viewid = viewid_;
    batch.from = self_;
    // Compression binds at Encode time (the one encode a send performs), so
    // the events vector stays inspectable and the stateful encoder observes
    // batches exactly in transmission order.
    if (options_.compression == CompressionMode::kDict &&
        st != state_.end()) {
      batch.mode = CompressionMode::kDict;
      batch.codec = &st->second.encoder;
    }
    batch.events.assign(
        records_.begin() + static_cast<std::ptrdiff_t>(lo - base_ts_),
        records_.begin() + static_cast<std::ptrdiff_t>(end - base_ts_));
    ++stats_.batches_sent;
    stats_.records_sent += end - lo;
    send_(backup, batch);
    lo = end;
  }
}

void CommBuffer::ArmRetransmitTimer() {
  host::Time next = 0;
  for (const auto& [mid, st] : state_) {
    if (st.deadline != 0 && (next == 0 || st.deadline < next)) {
      next = st.deadline;
    }
  }
  host_.timers().Cancel(retransmit_timer_);
  retransmit_timer_ = host::kNoTimer;
  if (next == 0) return;
  retransmit_timer_ =
      host_.timers().At(next, [this] { CheckRetransmits(); });
}

void CommBuffer::CheckRetransmits() {
  retransmit_timer_ = host::kNoTimer;
  if (!active_) return;
  const host::Time now = host_.Now();
  for (auto& [backup, st] : state_) {
    if (st.state_transfer) continue;  // no record deadlines during transfer
    if (st.deadline == 0 || st.deadline > now) continue;
    if (st.sent <= st.acked) {
      st.deadline = 0;
      continue;
    }
    // Stalled: in-flight records outlived their ack deadline. Go-back-N for
    // this backup only; healthy backups are untouched.
    ++stats_.retransmit_timeouts;
    stats_.records_retransmitted += st.sent - st.acked;
    st.sent = st.acked;
    st.gap_resent_hi = 0;
    st.gap_deadline = 0;
    st.deadline = 0;
    SendTo(backup);
  }
  ArmRetransmitTimer();
}

}  // namespace vsr::vr
