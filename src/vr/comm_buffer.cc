#include "vr/comm_buffer.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vsr::vr {

CommBuffer::CommBuffer(sim::Simulation& simulation, CommBufferOptions options,
                       std::function<void(Mid, const BufferBatchMsg&)> send,
                       std::function<void()> on_force_failed)
    : sim_(simulation),
      options_(options),
      send_(std::move(send)),
      on_force_failed_(std::move(on_force_failed)) {}

void CommBuffer::StartView(ViewId viewid, std::vector<Mid> backups,
                           std::size_t config_size, GroupId group, Mid self,
                           History* history) {
  Stop();
  active_ = true;
  viewid_ = viewid;
  group_ = group;
  self_ = self;
  backups_ = std::move(backups);
  sub_majority_ = SubMajorityOf(config_size);
  history_ = history;
  next_ts_ = 1;
  records_.clear();
  acked_.clear();
  for (Mid b : backups_) acked_[b] = 0;

  retransmit_timer_ = sim_.scheduler().After(options_.retransmit_interval,
                                             [this] { FlushNow(); });
}

void CommBuffer::Stop() {
  active_ = false;
  sim_.scheduler().Cancel(flush_timer_);
  sim_.scheduler().Cancel(retransmit_timer_);
  sim_.scheduler().Cancel(force_check_timer_);
  flush_timer_ = retransmit_timer_ = force_check_timer_ = sim::kNoTimer;
  // Drop pending forces without invoking callbacks: the continuations belong
  // to coroutines the cohort is about to destroy anyway.
  forces_.clear();
  history_ = nullptr;
}

Viewstamp CommBuffer::Add(EventRecord record) {
  assert(active_);
  record.ts = next_ts_++;
  // "It atomically assigns the event a timestamp (advancing the timestamp
  //  and updating the history in the process)".
  history_->Advance(record.ts);
  records_.push_back(std::move(record));
  ++stats_.adds;
  ScheduleFlush(options_.flush_delay);
  return Viewstamp{viewid_, records_.back().ts};
}

void CommBuffer::ForceTo(Viewstamp vs, std::function<void(bool)> done) {
  ++stats_.forces;
  // "If the viewstamp is not for the current view it returns immediately."
  if (!active_ || vs.view != viewid_) {
    ++stats_.forces_immediate;
    done(true);
    return;
  }
  if (StableTs() >= vs.ts || sub_majority_ == 0) {
    ++stats_.forces_immediate;
    done(true);
    return;
  }
  forces_.push_back(PendingForce{vs.ts, std::move(done),
                                 sim_.Now() + options_.force_timeout});
  if (force_check_timer_ == sim::kNoTimer) {
    force_check_timer_ = sim_.scheduler().After(
        options_.force_timeout, [this] { CheckForceTimeouts(); });
  }
  ScheduleFlush(0);
}

std::uint64_t CommBuffer::StableTs() const {
  if (backups_.empty() || sub_majority_ == 0) return next_ts_ - 1;
  std::vector<std::uint64_t> acks;
  acks.reserve(acked_.size());
  for (const auto& [mid, ts] : acked_) acks.push_back(ts);
  std::sort(acks.begin(), acks.end(), std::greater<>());
  if (acks.size() < sub_majority_) return 0;
  return acks[sub_majority_ - 1];
}

void CommBuffer::OnAck(const BufferAckMsg& ack) {
  if (!active_ || ack.viewid != viewid_) return;
  auto it = acked_.find(ack.from);
  if (it == acked_.end()) return;
  if (ack.ts > it->second) it->second = ack.ts;
  ResolveForces();
}

void CommBuffer::ResolveForces() {
  const std::uint64_t stable = StableTs();
  // Callbacks may add records / new forces; collect first, then run.
  std::vector<std::function<void(bool)>> ready;
  std::erase_if(forces_, [&](PendingForce& f) {
    if (f.ts <= stable) {
      ready.push_back(std::move(f.done));
      return true;
    }
    return false;
  });
  for (auto& cb : ready) cb(true);
}

void CommBuffer::CheckForceTimeouts() {
  force_check_timer_ = sim::kNoTimer;
  if (!active_) return;
  const sim::Time now = sim_.Now();
  std::vector<std::function<void(bool)>> expired;
  sim::Time next_deadline = 0;
  std::erase_if(forces_, [&](PendingForce& f) {
    if (f.deadline <= now) {
      expired.push_back(std::move(f.done));
      return true;
    }
    if (next_deadline == 0 || f.deadline < next_deadline) {
      next_deadline = f.deadline;
    }
    return false;
  });
  if (next_deadline != 0) {
    force_check_timer_ =
        sim_.scheduler().At(next_deadline, [this] { CheckForceTimeouts(); });
  }
  if (!expired.empty()) {
    stats_.forces_failed += expired.size();
    for (auto& cb : expired) cb(false);
    // "If communication with some backups is impossible, the call of
    //  force-to will be abandoned, and the cohort will switch to running the
    //  view change algorithm."
    if (on_force_failed_) on_force_failed_();
  }
}

void CommBuffer::ScheduleFlush(sim::Duration delay) {
  if (!active_) return;
  if (delay == 0) {
    sim_.scheduler().Cancel(flush_timer_);
    flush_timer_ = sim::kNoTimer;
    FlushNow();
    return;
  }
  if (flush_timer_ != sim::kNoTimer) return;  // already scheduled
  flush_timer_ = sim_.scheduler().After(delay, [this] {
    flush_timer_ = sim::kNoTimer;
    FlushNow();
  });
}

void CommBuffer::FlushNow() {
  if (!active_) return;
  for (Mid b : backups_) SendTo(b);
  // Re-arm the retransmission timer.
  sim_.scheduler().Cancel(retransmit_timer_);
  retransmit_timer_ = sim_.scheduler().After(options_.retransmit_interval,
                                             [this] { FlushNow(); });
}

void CommBuffer::SendTo(Mid backup) {
  const std::uint64_t from = acked_[backup];  // next needed is from + 1
  if (from >= records_.size()) return;        // fully acked
  BufferBatchMsg batch;
  batch.group = group_;
  batch.viewid = viewid_;
  batch.from = self_;
  const std::size_t end =
      std::min(records_.size(), static_cast<std::size_t>(from) + options_.max_batch);
  batch.events.assign(records_.begin() + static_cast<long>(from),
                      records_.begin() + static_cast<long>(end));
  ++stats_.batches_sent;
  send_(backup, batch);
}

}  // namespace vsr::vr
