#include "vr/events.h"

namespace vsr::vr {

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kCompletedCall:
      return "completed-call";
    case EventType::kCommitting:
      return "committing";
    case EventType::kCommitted:
      return "committed";
    case EventType::kAborted:
      return "aborted";
    case EventType::kDone:
      return "done";
    case EventType::kAbortedSub:
      return "aborted-sub";
    case EventType::kNewView:
      return "newview";
    case EventType::kShardInstall:
      return "shard-install";
    case EventType::kShardDrop:
      return "shard-drop";
  }
  return "?";
}

std::string EventRecord::ToString() const {
  std::string s = EventTypeName(type);
  s += "@" + std::to_string(ts);
  if (type != EventType::kNewView) s += " " + sub_aid.ToString();
  if (type == EventType::kNewView) s += " " + view.ToString();
  return s;
}

}  // namespace vsr::vr
