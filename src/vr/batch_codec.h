// Compression codec for the replicated event stream (DESIGN.md §8).
//
// The primary→backup connection is the hot path VR-88's whole design
// optimizes (events stream through the communication buffer instead of being
// forced to stable storage), so its frames are worth compressing. Each
// primary↔backup pair shares a stateful codec: a BatchEncoder lives in the
// CommBuffer's per-backup state, a BatchDecoder in the receiving cohort.
// Compression exploits three redundancies:
//   * object uids repeat across records (hot keys) — a shared KeyDict maps
//     them to small slot numbers;
//   * successive versions of an object are usually near-identical — tentative
//     values are delta-encoded against the slot's last replicated version;
//   * the fixed-width integers of the raw layout (timestamps, viewids, call
//     sequence numbers) are small or change slowly — varint/zig-zag packing
//     plus implicit per-batch timestamps remove most of their bytes.
//
// Because the codec is stateful and the network loses, reorders, and
// duplicates frames, every compressed batch carries a generation number and
// its first timestamp. The encoder bumps the generation and starts from an
// empty dictionary (a "reset batch") whenever the batch does not continue
// exactly where the previous one ended — which is precisely what happens on
// view start and sends this encoder never saw, so those paths need no
// special cases. The decoder accepts a batch only if it is a
// newer-generation reset or the exact next in-sequence batch; everything
// else is a stale duplicate (dropped) or a sync loss (reported so the cohort
// can nack, which makes the primary resend).
//
// Retransmissions (go-back-N, gap resends) are NOT resets: they rewind to
// the backup's cumulative ack, and the decoder's state at that point is a
// deterministic replay of the records up to the ack. The encoder keeps a
// checkpoint of its stream state at acked + 1 (advanced by replaying each
// newly-acked record's dictionary mutations) and re-encodes a resent range
// from the checkpoint as an in-sequence continuation of the same generation,
// preserving hot-key dictionary hits through lossy periods (DESIGN.md §8.3).
#pragma once

#include <cstdint>
#include <vector>

#include "vr/events.h"
#include "vr/types.h"
#include "wire/buffer.h"
#include "wire/dict.h"

namespace vsr::vr {

enum class CompressionMode : std::uint8_t {
  kRaw = 0,   // body is the uncompressed record layout
  kDict = 1,  // body is the stateful dictionary/delta layout (§8.4)
};

// Uids longer than this are encoded as literals and never enter the
// dictionary (slot numbers would not pay for themselves).
inline constexpr std::size_t kMaxDictUid = 128;
inline constexpr std::size_t kDefaultDictCapacity = 64;

struct CodecStats {
  std::uint64_t batches = 0;
  std::uint64_t records = 0;
  std::uint64_t resets = 0;   // reset batches emitted (gen bumps)
  std::uint64_t rewinds = 0;  // resends re-encoded from the ack checkpoint
  std::uint64_t dict_hits = 0;
  std::uint64_t dict_inserts = 0;
  std::uint64_t tentative_deltas = 0;    // versions shipped as deltas
  std::uint64_t tentative_literals = 0;  // versions shipped whole
  std::uint64_t bytes_out = 0;           // compressed body bytes emitted
};

class BatchEncoder {
 public:
  explicit BatchEncoder(std::size_t dict_capacity = kDefaultDictCapacity);

  // Appends the compressed body for `events` (a non-empty run of records
  // with consecutive timestamps, as CommBuffer batches always are) to `w`.
  // When events.front().ts is not the expected continuation, first tries to
  // rewind to the ack checkpoint (same-generation resend); otherwise resets.
  void EncodeBody(wire::Writer& w, const std::vector<EventRecord>& events);

  // Advances the rewind checkpoint to acked_ts + 1 by replaying the
  // dictionary/context mutations of the newly-acked records. `records` is
  // the resident record vector holding timestamps (base_ts, base_ts + size];
  // if the range [checkpoint_ts, acked_ts] is no longer fully resident the
  // checkpoint is invalidated (later resends fall back to a reset).
  void AdvanceCheckpoint(std::uint64_t acked_ts,
                         const std::vector<EventRecord>& records,
                         std::uint64_t base_ts);

  // First timestamp a rewind can target, or 0 if no valid checkpoint.
  std::uint64_t checkpoint_ts() const { return ckpt_valid_ ? ckpt_ts_ : 0; }

  // Forces the next batch to open a fresh generation (reset batch). Used
  // when the receiver reports its decoder cannot continue this stream —
  // e.g. it is freshly (re)started or just installed a snapshot.
  void ForceReset();

  const CodecStats& stats() const { return stats_; }

 private:
  void EncodeRecord(wire::Writer& w, const EventRecord& e);
  void EncodeEffect(wire::Writer& w, const ObjectEffect& fx);
  void ReplayMutations(const EventRecord& e);

  std::uint64_t gen_ = 0;      // current generation; 0 = nothing sent yet
  std::uint64_t next_ts_ = 0;  // expected first ts of the next batch
  bool have_last_aid_ = false;
  Aid last_aid_;
  std::uint64_t prev_call_seq_ = 0;
  wire::KeyDict dict_;

  // Stream state as of `ckpt_ts_` (i.e. just before encoding that record),
  // always within the live generation; mirrors the decoder's state once it
  // has applied everything below ckpt_ts_.
  bool ckpt_valid_ = false;
  std::uint64_t ckpt_ts_ = 0;
  bool ckpt_have_last_aid_ = false;
  Aid ckpt_last_aid_;
  std::uint64_t ckpt_prev_call_seq_ = 0;
  wire::KeyDict ckpt_dict_;

  CodecStats stats_;
};

enum class BatchOutcome : std::uint8_t {
  kOk = 0,        // decoded; records returned
  kStale = 1,     // duplicate of an already-consumed batch; drop silently
  kUnsynced = 2,  // decoder lost sync; caller should nack (gap request)
  kBad = 3,       // malformed; reader marked bad, decoder state untouched
};

class BatchDecoder {
 public:
  explicit BatchDecoder(std::size_t dict_capacity = kDefaultDictCapacity);

  // Decodes one compressed body. (viewid, from) identify the stream: a reset
  // batch (re)binds the decoder to it. `last_ts` is set to the batch's
  // highest timestamp whenever the header parses, so a kUnsynced caller
  // knows what to nack for. Decoding runs against a trial copy of the
  // decoder state and commits only if the whole batch parses; a parse
  // failure additionally unbinds the stream, so every later in-sequence
  // batch reports kUnsynced until a reset batch arrives.
  BatchOutcome DecodeBody(wire::Reader& r, ViewId viewid, Mid from,
                          std::vector<EventRecord>& out,
                          std::uint64_t& last_ts);

  // After a kUnsynced outcome: true when only a reset batch can resync this
  // stream (decoder unbound, poisoned, or behind a newer generation); false
  // when the batch merely arrived ahead of a hole that an in-sequence
  // continuation (rewound resend) will fill. The caller forwards this in its
  // nack so the encoder knows whether to ForceReset().
  bool needs_reset() const { return needs_reset_; }

  void Reset();

 private:
  EventRecord DecodeRecord(wire::Reader& r, std::uint64_t ts);
  ObjectEffect DecodeEffect(wire::Reader& r);

  bool bound_ = false;
  bool needs_reset_ = false;
  ViewId viewid_;
  Mid from_ = 0;
  std::uint64_t gen_ = 0;
  std::uint64_t next_ts_ = 0;
  bool have_last_aid_ = false;
  Aid last_aid_;
  std::uint64_t prev_call_seq_ = 0;
  wire::KeyDict dict_;
};

}  // namespace vsr::vr
