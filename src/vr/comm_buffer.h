// The primary's communication buffer (§2).
//
// "Instead of checkpointing events directly to the backups, the primary
//  maintains a communication buffer (similar to a fifo queue) to which it
//  writes event records. ... Information in the buffer is sent to the
//  backups in timestamp order."
//
// Add() atomically assigns the next timestamp, advances the cohort history,
// and appends the record; records are flushed to backups in background
// (write semantics) and ForceTo() implements the force-to operation: it
// completes once a sub-majority of backups acknowledge everything up to the
// given viewstamp, so that — counting the primary itself — a majority of the
// configuration knows those events. A force that cannot complete within its
// timeout is abandoned and reported, which is the trigger for the cohort to
// run a view change (§3 footnote 1).
//
// Replication is windowed and pipelined, not cumulative rebroadcast:
//  * a per-backup send cursor tracks what is in flight, so a flush only
//    transmits records the backup has never been sent;
//  * at most `window` records may be unacknowledged per backup; beyond that
//    the sender stalls until acks arrive (flow control);
//  * each backup with in-flight records carries a retransmission deadline;
//    only a backup whose acks stall past its deadline gets a go-back-N
//    resend — healthy backups are never sent a record twice;
//  * a backup that observes a hole (records arrived beyond applied+1) sends
//    an explicit gap request in its ack; the primary re-sends exactly the
//    missing range immediately instead of waiting out the deadline;
//  * records are garbage collected below the all-backups-acked watermark,
//    raised to StableTs() - window once the stable watermark runs more than
//    a window ahead of a laggard: a dead or partitioned backup then no
//    longer pins memory — it is routed through snapshot state transfer
//    (DESIGN.md §9) instead of record replay, keeping the resident suffix
//    O(window) instead of O(slowest backup lag).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "host/host.h"
#include "vr/batch_codec.h"
#include "vr/events.h"
#include "vr/history.h"
#include "vr/messages.h"
#include "vr/types.h"

namespace vsr::vr {

struct CommBufferOptions {
  // Background flush delay: how long Add()ed records may linger before being
  // sent ("at a convenient time"). ForceTo flushes immediately.
  host::Duration flush_delay = 500 * host::kMicrosecond;
  // Per-backup ack deadline: in-flight records not acknowledged within this
  // window trigger a go-back-N resend to that backup only.
  host::Duration retransmit_interval = 20 * host::kMillisecond;
  // A force that has not satisfied a sub-majority within this window is
  // abandoned (communication failure ⇒ view change).
  host::Duration force_timeout = 400 * host::kMillisecond;
  // Max records per BufferBatch message.
  std::size_t max_batch = 64;
  // Byte-budget companion to max_batch: a batch is cut early once the
  // cumulative pre-compression encoding of its records reaches this many
  // bytes (always at least one record per batch). 0 disables the budget.
  // Counted before compression so the budget is stable across codec modes;
  // the event log's group commit applies the same idea to segment writes.
  std::size_t max_batch_bytes = 0;
  // Max in-flight (sent but unacknowledged) records per backup.
  std::size_t window = 1024;
  // Wire compression of batches (DESIGN.md §8): kDict delta/dictionary-
  // encodes each batch against per-backup codec state. kRaw (the default)
  // keeps the uncompressed layout.
  CompressionMode compression = CompressionMode::kRaw;
  // Hot-key dictionary slots per backup connection (kDict only).
  std::size_t dict_capacity = kDefaultDictCapacity;
  // Snapshot-based catch-up (DESIGN.md §9): GC may release records past a
  // laggard's ack (bounding memory by `window` past StableTs()) and the
  // laggard is served a snapshot. Off = the pre-snapshot behavior — GC waits
  // for every backup and catch-up replays the full record suffix (ablation
  // A7, bench E11).
  bool snapshot_catchup = true;
  // Backup read leases (DESIGN.md §14): when nonzero, processing an ack
  // from a backup re-grants it a read lease of this duration once at least
  // half the duration has elapsed since the previous grant — renewal rides
  // the ack traffic, no dedicated timer. 0 disables granting entirely.
  host::Duration lease_duration = 0;
};

class CommBuffer {
 public:
  // send(to, batch) transmits a batch to one backup. on_force_failed() fires
  // when a force is abandoned. on_needs_snapshot(backup) fires when a backup
  // falls behind the GC watermark and must catch up via state transfer; the
  // owner is expected to serve it a snapshot (DESIGN.md §9).
  // on_lease(backup, stable_ts) fires when the lease half-life policy wants
  // a fresh grant sent to `backup`; the owner builds and sends the
  // LeaseGrantMsg (it knows the viewid and its own mid is already here, but
  // message construction stays with the cohort, like batches).
  CommBuffer(host::Host& hst, CommBufferOptions options,
             std::function<void(Mid, const BufferBatchMsg&)> send,
             std::function<void()> on_force_failed,
             std::function<void(Mid)> on_needs_snapshot = nullptr,
             std::function<void(Mid, std::uint64_t)> on_lease = nullptr);
  ~CommBuffer() { Stop(); }
  CommBuffer(const CommBuffer&) = delete;
  CommBuffer& operator=(const CommBuffer&) = delete;

  // Begins operating for a view this cohort leads. `history` is the cohort's
  // history; Add() advances its last entry. `config_size` is the size of the
  // whole configuration (sub-majority arithmetic is over the configuration,
  // not the view).
  void StartView(ViewId viewid, std::vector<Mid> backups,
                 std::size_t config_size, GroupId group, Mid self,
                 History* history);

  // Stops all activity (cohort stopped being primary, or crashed). Pending
  // forces fail silently (their transactions resolve via the view change).
  void Stop();

  bool active() const { return active_; }
  ViewId viewid() const { return viewid_; }
  std::uint64_t last_ts() const { return next_ts_ - 1; }

  // The add operation (§3): assigns the event a timestamp, advances the
  // history, appends to the buffer, schedules a background flush. Returns
  // the event's viewstamp.
  Viewstamp Add(EventRecord record);

  // The force-to operation (§3). Completes with true once a sub-majority of
  // backups ack all events of the current view with timestamps <= vs.ts;
  // completes immediately (true) if vs is not for the current view;
  // completes with false on a stopped buffer (the events were never
  // replicated) or if abandoned. The callback may run synchronously.
  void ForceTo(Viewstamp vs, std::function<void(bool)> done);

  // Backup acknowledgment / gap request. Acks from senders outside the
  // view's backup set, for the wrong group, or claiming a timestamp beyond
  // last_ts() are rejected (counted in stats().acks_rejected).
  void OnAck(const BufferAckMsg& ack);

  // Sub-majority ack watermark: the highest ts acked by at least a
  // sub-majority of backups (0 if none).
  std::uint64_t StableTs() const;

  // The resident (not yet garbage-collected) suffix of the current view's
  // records: records()[i].ts == base_ts() + i + 1. Records with
  // ts <= base_ts() were acked by every backup and have been released.
  const std::vector<EventRecord>& records() const { return records_; }
  std::uint64_t base_ts() const { return base_ts_; }

  // Highest cumulative ack received from `backup` (0 if none/unknown).
  std::uint64_t AckedTs(Mid backup) const;

  struct Stats {
    std::uint64_t adds = 0;
    std::uint64_t forces = 0;
    // Forces satisfied without waiting: the needed acks were already in
    // (§3.7's "prepare messages are usually processed entirely at the
    // primary" claim, measured in bench E2).
    std::uint64_t forces_immediate = 0;
    std::uint64_t forces_failed = 0;
    std::uint64_t batches_sent = 0;
    // Record transmissions, including re-sends. The windowed-replication
    // invariant: records_sent - records_retransmitted record deliveries were
    // first transmissions — no record is sent twice to a backup except after
    // its retransmission deadline expired or it asked for a gap fill.
    std::uint64_t records_sent = 0;
    std::uint64_t records_retransmitted = 0;
    // Per-backup ack-deadline expiries (each triggers one go-back-N resend).
    std::uint64_t retransmit_timeouts = 0;
    // Explicit gap requests honored with an immediate range resend.
    std::uint64_t gap_requests = 0;
    // Flush attempts blocked because a backup's in-flight window was full.
    std::uint64_t window_stalls = 0;
    // Records released below the GC watermark (see CollectGarbage).
    std::uint64_t records_gced = 0;
    // Laggards routed through snapshot state transfer: transitions of a
    // backup into state-transfer mode because its next needed record was
    // already garbage-collected.
    std::uint64_t snapshots_served = 0;
    // Max resident record count (memory high-water mark of this view).
    std::uint64_t buffer_high_water = 0;
    // Acks discarded: wrong group, unknown sender, or ts beyond last_ts().
    std::uint64_t acks_rejected = 0;
    // Log-recovered rejoin acks honored: the backup's cursors were rewound
    // to its replayed ts and the tail restreamed (or snapshot-served).
    std::uint64_t rejoins = 0;
    // Duplicate rejoin acks dropped: their recovery epoch was already
    // serviced, so rewinding again would only thrash the stream.
    std::uint64_t rejoins_ignored = 0;
    // Acks accepted from backups of this view. With backup-side ack
    // coalescing on, this (and the kBufferAck frame count) drops while the
    // replication watermark still advances.
    std::uint64_t acks_received = 0;
    // Read-lease grants issued on the ack path (DESIGN.md §14).
    std::uint64_t leases_granted = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Compression counters of `backup`'s encoder (nullptr if unknown backup).
  const CodecStats* encoder_stats(Mid backup) const;

 private:
  struct PendingForce {
    std::uint64_t ts;
    std::function<void(bool)> done;
    host::Time deadline;
  };

  // Per-backup replication cursor.
  struct BackupState {
    std::uint64_t acked = 0;  // highest cumulative ack received
    std::uint64_t sent = 0;   // highest ts transmitted (the send cursor)
    // Upper end of the last gap-request resend; suppresses duplicate
    // resends for the same hole until the ack advances past it — or until
    // gap_deadline passes, in case the resend itself was lost.
    std::uint64_t gap_resent_hi = 0;
    host::Time gap_deadline = 0;
    // Ack deadline while records are in flight (0 = nothing outstanding).
    host::Time deadline = 0;
    // The backup's next needed record was garbage-collected: it is being
    // caught up via snapshot state transfer (on_needs_snapshot) and gets no
    // record sends, gap fills, or retransmissions until its ack re-enters
    // the resident range.
    bool state_transfer = false;
    // Highest rejoin epoch serviced for this backup (0 = none): duplicates
    // at or below it are retransmissions of an episode already handled.
    std::uint64_t rejoin_epoch = 0;
    // Stateful wire compressor for this connection (kDict mode). Fresh per
    // view; rewinds to the ack checkpoint on retransmission, resets when
    // the backup reports its decoder cannot continue the stream.
    BatchEncoder encoder;
    // Next time an ack from this backup triggers a fresh read-lease grant
    // (lease half-life renewal; 0 = grant on the first ack).
    host::Time lease_renew_at = 0;
  };

  void ScheduleFlush(host::Duration delay);
  void FlushNow();
  void SendTo(Mid backup);
  void SendRange(Mid backup, std::uint64_t lo, std::uint64_t hi);
  // True if `backup` must catch up via state transfer (its next needed
  // record is below base_ts_); fires on_needs_snapshot on the transition.
  bool RouteThroughSnapshot(Mid backup, BackupState& st);
  void ResolveForces();
  void CheckForceTimeouts();
  void CheckRetransmits();
  void ArmRetransmitTimer();
  void CollectGarbage();

  host::Host& host_;
  CommBufferOptions options_;
  std::function<void(Mid, const BufferBatchMsg&)> send_;
  std::function<void()> on_force_failed_;
  std::function<void(Mid)> on_needs_snapshot_;
  std::function<void(Mid, std::uint64_t)> on_lease_;

  bool active_ = false;
  ViewId viewid_;
  GroupId group_ = 0;
  Mid self_ = 0;
  std::vector<Mid> backups_;
  std::size_t sub_majority_ = 0;
  History* history_ = nullptr;

  std::uint64_t next_ts_ = 1;
  std::uint64_t base_ts_ = 0;         // ts of the last GC'd record
  std::vector<EventRecord> records_;  // records_[i].ts == base_ts_ + i + 1
  std::map<Mid, BackupState> state_;
  std::vector<PendingForce> forces_;

  host::TimerId flush_timer_ = host::kNoTimer;
  host::TimerId retransmit_timer_ = host::kNoTimer;
  host::TimerId force_check_timer_ = host::kNoTimer;

  Stats stats_;
};

}  // namespace vsr::vr
