// The primary's communication buffer (§2).
//
// "Instead of checkpointing events directly to the backups, the primary
//  maintains a communication buffer (similar to a fifo queue) to which it
//  writes event records. ... Information in the buffer is sent to the
//  backups in timestamp order."
//
// Add() atomically assigns the next timestamp, advances the cohort history,
// and appends the record; records are flushed to backups in background
// (write semantics) and ForceTo() implements the force-to operation: it
// completes once a sub-majority of backups acknowledge everything up to the
// given viewstamp, so that — counting the primary itself — a majority of the
// configuration knows those events. A force that cannot complete within its
// timeout is abandoned and reported, which is the trigger for the cohort to
// run a view change (§3 footnote 1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulation.h"
#include "vr/events.h"
#include "vr/history.h"
#include "vr/messages.h"
#include "vr/types.h"

namespace vsr::vr {

struct CommBufferOptions {
  // Background flush delay: how long Add()ed records may linger before being
  // sent ("at a convenient time"). ForceTo flushes immediately.
  sim::Duration flush_delay = 500 * sim::kMicrosecond;
  // Retransmission interval for unacknowledged records.
  sim::Duration retransmit_interval = 20 * sim::kMillisecond;
  // A force that has not satisfied a sub-majority within this window is
  // abandoned (communication failure ⇒ view change).
  sim::Duration force_timeout = 400 * sim::kMillisecond;
  // Max records per BufferBatch message.
  std::size_t max_batch = 64;
};

class CommBuffer {
 public:
  // send(to, batch) transmits a batch to one backup. on_force_failed() fires
  // when a force is abandoned.
  CommBuffer(sim::Simulation& simulation, CommBufferOptions options,
             std::function<void(Mid, const BufferBatchMsg&)> send,
             std::function<void()> on_force_failed);
  ~CommBuffer() { Stop(); }
  CommBuffer(const CommBuffer&) = delete;
  CommBuffer& operator=(const CommBuffer&) = delete;

  // Begins operating for a view this cohort leads. `history` is the cohort's
  // history; Add() advances its last entry. `config_size` is the size of the
  // whole configuration (sub-majority arithmetic is over the configuration,
  // not the view).
  void StartView(ViewId viewid, std::vector<Mid> backups,
                 std::size_t config_size, GroupId group, Mid self,
                 History* history);

  // Stops all activity (cohort stopped being primary, or crashed). Pending
  // forces fail silently (their transactions resolve via the view change).
  void Stop();

  bool active() const { return active_; }
  ViewId viewid() const { return viewid_; }
  std::uint64_t last_ts() const { return next_ts_ - 1; }

  // The add operation (§3): assigns the event a timestamp, advances the
  // history, appends to the buffer, schedules a background flush. Returns
  // the event's viewstamp.
  Viewstamp Add(EventRecord record);

  // The force-to operation (§3). Completes with true once a sub-majority of
  // backups ack all events of the current view with timestamps <= vs.ts;
  // completes immediately (true) if vs is not for the current view;
  // completes with false if abandoned. The callback may run synchronously.
  void ForceTo(Viewstamp vs, std::function<void(bool)> done);

  // Backup acknowledgment.
  void OnAck(const BufferAckMsg& ack);

  // Sub-majority ack watermark: the highest ts acked by at least a
  // sub-majority of backups (0 if none).
  std::uint64_t StableTs() const;

  // All records of the current view (for tests and the lazy-apply ablation).
  const std::vector<EventRecord>& records() const { return records_; }

  struct Stats {
    std::uint64_t adds = 0;
    std::uint64_t forces = 0;
    // Forces satisfied without waiting: the needed acks were already in
    // (§3.7's "prepare messages are usually processed entirely at the
    // primary" claim, measured in bench E2).
    std::uint64_t forces_immediate = 0;
    std::uint64_t forces_failed = 0;
    std::uint64_t batches_sent = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct PendingForce {
    std::uint64_t ts;
    std::function<void(bool)> done;
    sim::Time deadline;
  };

  void ScheduleFlush(sim::Duration delay);
  void FlushNow();
  void SendTo(Mid backup);
  void ResolveForces();
  void CheckForceTimeouts();

  sim::Simulation& sim_;
  CommBufferOptions options_;
  std::function<void(Mid, const BufferBatchMsg&)> send_;
  std::function<void()> on_force_failed_;

  bool active_ = false;
  ViewId viewid_;
  GroupId group_ = 0;
  Mid self_ = 0;
  std::vector<Mid> backups_;
  std::size_t sub_majority_ = 0;
  History* history_ = nullptr;

  std::uint64_t next_ts_ = 1;
  std::vector<EventRecord> records_;  // records_[i].ts == i + 1
  std::map<Mid, std::uint64_t> acked_;
  std::vector<PendingForce> forces_;

  sim::TimerId flush_timer_ = sim::kNoTimer;
  sim::TimerId retransmit_timer_ = sim::kNoTimer;
  sim::TimerId force_check_timer_ = sim::kNoTimer;

  Stats stats_;
};

}  // namespace vsr::vr
