// The wire protocol: every message exchanged by cohorts and clients.
//
// Message ↔ paper mapping:
//   Ping          "I'm alive" messages (§4)
//   Invite        the view manager's invitation (§4, Fig. 5)
//   Accept        normal / "crashed" acceptances (§4)
//   InitView      manager → new primary when the manager is not it (§4)
//   BufferBatch   event records streamed from the communication buffer (§2);
//                 also carries the newview record that initializes underlings
//   BufferAck     backup acknowledgment driving force_to (§3), optionally
//                 carrying a gap request (nack) for a replication hole
//   Call/Reply    remote procedure call to a server group's primary (Fig. 2/3)
//   Prepare/...   two-phase commit (Fig. 2/3)
//   AbortSub      discard one subaction — a retried call attempt (§3.6)
//   Query/...     outcome queries (§3.4)
//   Probe/...     locating the current primary + viewid of a group (§3,
//                 cache initialization)
//   BeginTxn/...  the coordinator-server protocol for unreplicated
//                 clients (§3.5)
//
// Every struct has Encode(wire::Writer&) and static Decode(wire::Reader&);
// a decoded message is only meaningful if reader.ok() afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vr/batch_codec.h"
#include "vr/events.h"
#include "vr/history.h"
#include "vr/types.h"
#include "wire/buffer.h"

namespace vsr::vr {

enum class MsgType : std::uint16_t {
  kPing = 1,
  kInvite = 2,
  kAccept = 3,
  kInitView = 4,
  kBufferBatch = 5,
  kBufferAck = 6,
  kSnapshotChunk = 7,
  kSnapshotAck = 8,

  kCall = 10,
  kReply = 11,
  kPrepare = 12,
  kPrepareReply = 13,
  kCommit = 14,
  kCommitDone = 15,
  kAbort = 16,
  kAbortSub = 17,
  kQuery = 18,
  kQueryReply = 19,

  kProbe = 20,
  kProbeReply = 21,
  kBeginTxn = 22,
  kBeginTxnReply = 23,
  kCommitReq = 24,
  kCommitReqReply = 25,
  kAbortReq = 26,

  kShardPull = 27,

  kLeaseGrant = 28,
  kBackupRead = 29,
  kBackupReadReply = 30,
};

const char* MsgTypeName(MsgType t);

// ---------------------------------------------------------------------------
// Failure detection & view change
// ---------------------------------------------------------------------------

struct PingMsg {
  static constexpr MsgType kType = MsgType::kPing;
  GroupId group = 0;
  Mid from = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    w.U32(from);
  }
  static PingMsg Decode(wire::Reader& r) {
    PingMsg m;
    m.group = r.U64();
    m.from = r.U32();
    return m;
  }
};

struct InviteMsg {
  static constexpr MsgType kType = MsgType::kInvite;
  GroupId group = 0;
  ViewId new_viewid;
  Mid from = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    new_viewid.Encode(w);
    w.U32(from);
  }
  static InviteMsg Decode(wire::Reader& r) {
    InviteMsg m;
    m.group = r.U64();
    m.new_viewid = ViewId::Decode(r);
    m.from = r.U32();
    return m;
  }
};

struct AcceptMsg {
  static constexpr MsgType kType = MsgType::kAccept;
  GroupId group = 0;
  // The viewid of the invitation being accepted.
  ViewId invite_viewid;
  Mid from = 0;
  // True for a "crash-accept" (§4): the cohort recovered from a crash and
  // its gstate is gone; it reports only the viewid it remembers from stable
  // storage.
  bool crashed = false;
  // Normal acceptance: the cohort's current viewstamp and whether it is the
  // primary of that viewstamp's view.
  Viewstamp last_vs;
  bool was_primary = false;
  // Crash acceptance refinement (DESIGN.md §10): the cohort replayed a
  // durable event log and last_vs/was_primary describe the replayed state;
  // crash_viewid stays the stable-storage viewid ceiling.
  bool recovered = false;
  // Crash acceptance: cur_viewid recovered from stable storage.
  ViewId crash_viewid;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    invite_viewid.Encode(w);
    w.U32(from);
    w.Bool(crashed);
    last_vs.Encode(w);
    w.Bool(was_primary);
    crash_viewid.Encode(w);
    w.Bool(recovered);
  }
  static AcceptMsg Decode(wire::Reader& r) {
    AcceptMsg m;
    m.group = r.U64();
    m.invite_viewid = ViewId::Decode(r);
    m.from = r.U32();
    m.crashed = r.Bool();
    m.last_vs = Viewstamp::Decode(r);
    m.was_primary = r.Bool();
    m.crash_viewid = ViewId::Decode(r);
    m.recovered = r.Bool();
    if (m.recovered && !m.crashed) r.MarkBad();
    return m;
  }
};

struct InitViewMsg {
  static constexpr MsgType kType = MsgType::kInitView;
  GroupId group = 0;
  ViewId viewid;
  View view;
  Mid from = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    view.Encode(w);
    w.U32(from);
  }
  static InitViewMsg Decode(wire::Reader& r) {
    InitViewMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.view = View::Decode(r);
    m.from = r.U32();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Communication buffer replication
// ---------------------------------------------------------------------------

struct BufferBatchMsg {
  static constexpr MsgType kType = MsgType::kBufferBatch;
  GroupId group = 0;
  ViewId viewid;
  Mid from = 0;
  // Contiguous run of event records, in timestamp order. Always populated on
  // the sending side regardless of compression mode — compression happens at
  // Encode time, so tests and observers can inspect records directly.
  std::vector<EventRecord> events;

  // Wire compression (DESIGN.md §8). `mode` selects the body layout after
  // the common header; `codec` is transient plumbing installed by CommBuffer
  // just before the single Encode every send performs (never serialized,
  // never owned; a null codec encodes raw).
  CompressionMode mode = CompressionMode::kRaw;
  BatchEncoder* codec = nullptr;

  // Decode-side outcome for mode == kDict (see BatchOutcome). `events` is
  // empty in both non-Ok cases; `last_ts` names the batch's highest
  // timestamp so an unsynced receiver knows what range to nack, and
  // `reset_needed` whether only a reset batch can resync the stream (the
  // receiver forwards it as BufferAckMsg::codec_reset).
  bool stale = false;
  bool unsynced = false;
  bool reset_needed = false;
  std::uint64_t last_ts = 0;

  void Encode(wire::Writer& w) const;
  // Raw-only decode: a compressed body without a decoder marks the reader
  // bad. Cohorts pass their per-connection decoder via the second overload.
  static BufferBatchMsg Decode(wire::Reader& r) { return Decode(r, nullptr); }
  static BufferBatchMsg Decode(wire::Reader& r, BatchDecoder* dec);
};

struct BufferAckMsg {
  static constexpr MsgType kType = MsgType::kBufferAck;
  GroupId group = 0;
  ViewId viewid;
  Mid from = 0;
  // Highest contiguously applied timestamp in `viewid`.
  std::uint64_t ts = 0;
  // Gap request (nack): the backup holds records beyond ts + 1 and asks the
  // primary to resend exactly (ts, gap_hi] instead of waiting out the
  // primary's retransmission deadline.
  bool gap = false;
  std::uint64_t gap_hi = 0;
  // The backup's decoder cannot resync from a continuation (it is freshly
  // started, poisoned, or just installed a snapshot): the primary must open
  // a fresh generation (reset batch) on its next send.
  bool codec_reset = false;
  // Log-recovered rejoin (DESIGN.md §10): the backup replayed its durable
  // log up to `ts` and rejoined the view; the primary must rewind this
  // backup's cursors to ts (pre-crash acks beyond it are void — the backup
  // lost them) and restream or snapshot the tail.
  bool rejoin = false;
  // Identifies the recovery episode a rejoin belongs to (monotonically
  // increasing per backup; 0 = unspecified, always honored). Rejoin acks are
  // retransmitted until the first batch arrives, so the primary services
  // each episode exactly once: a delayed or reordered duplicate of an
  // already-serviced epoch must not rewind cursors the backup has since
  // advanced past (it would trigger a redundant restream).
  std::uint64_t rejoin_epoch = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U32(from);
    w.U64(ts);
    w.Bool(gap);
    w.U64(gap_hi);
    w.Bool(codec_reset);
    w.Bool(rejoin);
    w.U64(rejoin_epoch);
  }
  static BufferAckMsg Decode(wire::Reader& r) {
    BufferAckMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.from = r.U32();
    m.ts = r.U64();
    m.gap = r.Bool();
    m.gap_hi = r.U64();
    m.codec_reset = r.Bool();
    m.rejoin = r.Bool();
    m.rejoin_epoch = r.U64();
    if (m.gap && m.gap_hi <= m.ts) r.MarkBad();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Snapshot state transfer (DESIGN.md §9)
// ---------------------------------------------------------------------------

// One chunk of a serialized gstate snapshot, streamed primary → laggard
// backup. The snapshot is identified by `vs` (the viewstamp of the last
// event it covers); every chunk repeats the payload's total size and CRC so
// a transfer can be adopted from any chunk and verified on completion.
struct SnapshotChunkMsg {
  static constexpr MsgType kType = MsgType::kSnapshotChunk;
  GroupId group = 0;
  ViewId viewid;
  Mid from = 0;
  Viewstamp vs;                  // snapshot identity: covers events <= vs.ts
  std::uint64_t total_size = 0;  // payload bytes overall
  std::uint32_t checksum = 0;    // CRC-32 of the whole payload
  std::uint64_t offset = 0;      // position of `data` within the payload
  std::vector<std::uint8_t> data;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U32(from);
    vs.Encode(w);
    w.U64(total_size);
    w.U32(checksum);
    w.U64(offset);
    w.Bytes(std::span<const std::uint8_t>(data));
  }
  static SnapshotChunkMsg Decode(wire::Reader& r) {
    SnapshotChunkMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.from = r.U32();
    m.vs = Viewstamp::Decode(r);
    m.total_size = r.U64();
    m.checksum = r.U32();
    m.offset = r.U64();
    m.data = r.Bytes();
    // Every chunk carries at least one byte strictly inside the payload; an
    // empty snapshot does not exist (gstate is never zero bytes).
    if (m.total_size == 0 || m.offset >= m.total_size || m.data.empty() ||
        m.data.size() > m.total_size - m.offset) {
      r.MarkBad();
    }
    return m;
  }
};

// Backup → primary: cumulative contiguous byte count received for the
// snapshot identified by `vs`. offset == total_size acknowledges the whole
// (verified) payload; an offset below what the primary already saw acked
// signals the sink restarted and the transfer rewinds.
struct SnapshotAckMsg {
  static constexpr MsgType kType = MsgType::kSnapshotAck;
  GroupId group = 0;
  ViewId viewid;
  Mid from = 0;
  Viewstamp vs;
  std::uint64_t offset = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U32(from);
    vs.Encode(w);
    w.U64(offset);
  }
  static SnapshotAckMsg Decode(wire::Reader& r) {
    SnapshotAckMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.from = r.U32();
    m.vs = Viewstamp::Decode(r);
    m.offset = r.U64();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Remote calls
// ---------------------------------------------------------------------------

struct CallMsg {
  static constexpr MsgType kType = MsgType::kCall;
  GroupId group = 0;  // destination group
  ViewId viewid;      // client's cached viewid for the group (Fig. 2 step 1)
  // Correlation id for the reply (unique per sender).
  std::uint64_t call_id = 0;
  // Duplicate-suppression key, unique per (sub_aid, call_seq) — the
  // "connection information" §3.1 assumes of the message delivery system.
  // High 32 bits are the caller's mid so client- and server-originated
  // (nested) calls of one subaction never collide.
  std::uint64_t call_seq = 0;
  Mid reply_to = 0;
  SubAid sub_aid;
  // Subactions of this transaction the caller knows to be aborted (§3.6).
  // Their abort-sub messages are best-effort, so the retry carries the list:
  // the server discards their tentative versions before running this call,
  // otherwise the new attempt could read the dead attempt's writes.
  std::vector<std::uint32_t> dead_subs;
  std::string proc;
  std::vector<std::uint8_t> args;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U64(call_id);
    w.U64(call_seq);
    w.U32(reply_to);
    sub_aid.Encode(w);
    w.Vector(dead_subs, [&](std::uint32_t s) { w.U32(s); });
    w.String(proc);
    w.Bytes(args);
  }
  static CallMsg Decode(wire::Reader& r) {
    CallMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.call_id = r.U64();
    m.call_seq = r.U64();
    m.reply_to = r.U32();
    m.sub_aid = SubAid::Decode(r);
    m.dead_subs = r.Vector<std::uint32_t>([&] { return r.U32(); });
    m.proc = r.String();
    m.args = r.Bytes();
    return m;
  }
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  // The call's viewid is stale; new view info attached when known (Fig. 3
  // step 1, "rejection message containing the new viewid and view").
  kWrongView = 1,
  // The procedure raised an application error or could not acquire locks;
  // the transaction must abort.
  kFailed = 2,
};

struct ReplyMsg {
  static constexpr MsgType kType = MsgType::kReply;
  std::uint64_t call_id = 0;
  ReplyStatus status = ReplyStatus::kOk;
  std::vector<std::uint8_t> result;
  Pset pset;
  bool view_known = false;
  ViewId new_viewid;
  View new_view;

  void Encode(wire::Writer& w) const {
    w.U64(call_id);
    w.U8(static_cast<std::uint8_t>(status));
    w.Bytes(result);
    w.Vector(pset, [&](const PsetEntry& e) { e.Encode(w); });
    w.Bool(view_known);
    new_viewid.Encode(w);
    new_view.Encode(w);
  }
  static ReplyMsg Decode(wire::Reader& r) {
    ReplyMsg m;
    m.call_id = r.U64();
    std::uint8_t s = r.U8();
    if (s > 2) r.MarkBad();
    m.status = static_cast<ReplyStatus>(s);
    m.result = r.Bytes();
    m.pset = r.Vector<PsetEntry>([&] { return PsetEntry::Decode(r); });
    m.view_known = r.Bool();
    m.new_viewid = ViewId::Decode(r);
    m.new_view = View::Decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Two-phase commit
// ---------------------------------------------------------------------------

struct PrepareMsg {
  static constexpr MsgType kType = MsgType::kPrepare;
  GroupId group = 0;  // destination (participant) group
  Aid aid;
  Pset pset;
  Mid reply_to = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    aid.Encode(w);
    w.Vector(pset, [&](const PsetEntry& e) { e.Encode(w); });
    w.U32(reply_to);
  }
  static PrepareMsg Decode(wire::Reader& r) {
    PrepareMsg m;
    m.group = r.U64();
    m.aid = Aid::Decode(r);
    m.pset = r.Vector<PsetEntry>([&] { return PsetEntry::Decode(r); });
    m.reply_to = r.U32();
    return m;
  }
};

enum class PrepareStatus : std::uint8_t {
  kPrepared = 0,
  // The participant refuses: some of the transaction's events did not
  // survive a view change (compatible() failed) or the force failed.
  kRefused = 1,
  // The receiving cohort is not an active primary; current view info is
  // attached when known so the coordinator can retry at the right cohort
  // (§3.3: rejections carry "information about the current viewid and
  // primary if the cohort knows them").
  kWrongPrimary = 2,
};

struct PrepareReplyMsg {
  static constexpr MsgType kType = MsgType::kPrepareReply;
  Aid aid;
  GroupId from_group = 0;
  PrepareStatus status = PrepareStatus::kRefused;
  // True iff the transaction held only read locks at this participant; such
  // participants are excluded from phase two (Fig. 2 step 2).
  bool read_only = false;
  bool view_known = false;
  ViewId new_viewid;
  View new_view;
  // Fused commit path (DESIGN.md §13): the prepared-ack piggybacks the
  // identity of the participant's forced record — the viewstamp of the last
  // completed-call record covered by the prepare's force_to (or of the
  // committed record for a read-only participant). A zero viewstamp means
  // nothing was forced (no pset entry for this group). The ack and the
  // record identity travel as ONE message, so the coordinator learns both
  // "prepared" and "durable up to vs" in a single round.
  Viewstamp prepared_vs;

  void Encode(wire::Writer& w) const {
    aid.Encode(w);
    w.U64(from_group);
    w.U8(static_cast<std::uint8_t>(status));
    w.Bool(read_only);
    w.Bool(view_known);
    new_viewid.Encode(w);
    new_view.Encode(w);
    prepared_vs.Encode(w);
  }
  static PrepareReplyMsg Decode(wire::Reader& r) {
    PrepareReplyMsg m;
    m.aid = Aid::Decode(r);
    m.from_group = r.U64();
    std::uint8_t s = r.U8();
    if (s > 2) r.MarkBad();
    m.status = static_cast<PrepareStatus>(s);
    m.read_only = r.Bool();
    m.view_known = r.Bool();
    m.new_viewid = ViewId::Decode(r);
    m.new_view = View::Decode(r);
    m.prepared_vs = Viewstamp::Decode(r);
    return m;
  }
};

// One additional commit decision riding a CommitMsg frame to the same
// primary (decision piggybacking, the PR 9 follow-on): the coordinator
// coalesces decisions destined for one cohort into a single frame instead
// of a dedicated frame per transaction. Each extra is processed exactly
// like the carrying message's own decision and acked with its own
// CommitDoneMsg.
struct CommitExtra {
  Aid aid;
  Viewstamp decision_vs;
  bool fused = false;

  void Encode(wire::Writer& w) const {
    aid.Encode(w);
    decision_vs.Encode(w);
    w.Bool(fused);
  }
  static CommitExtra Decode(wire::Reader& r) {
    CommitExtra e;
    e.aid = Aid::Decode(r);
    e.decision_vs = Viewstamp::Decode(r);
    e.fused = r.Bool();
    return e;
  }
};

struct CommitMsg {
  static constexpr MsgType kType = MsgType::kCommit;
  GroupId group = 0;
  Aid aid;
  Mid reply_to = 0;
  // Fused commit path (DESIGN.md §13): the viewstamp the coordinator's
  // committing record was buffered at. Participants record it so an
  // in-doubt (§3.6) query racing this message can be answered from the
  // replicated decision, and traces can correlate the fan-out with the
  // decision's position in the coordinator's replication stream. Zero on
  // the serial (commit_fusion=off) path.
  Viewstamp decision_vs;
  // True when the fan-out overlapped the decision force (the committing
  // record may not have reached a sub-majority yet when this was sent).
  bool fused = false;
  // Piggybacked decisions for OTHER transactions whose commit fan-out
  // targets the same primary (wire trailer — appended, never reordered).
  std::vector<CommitExtra> extras;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    aid.Encode(w);
    w.U32(reply_to);
    decision_vs.Encode(w);
    w.Bool(fused);
    w.Vector(extras, [&](const CommitExtra& e) { e.Encode(w); });
  }
  static CommitMsg Decode(wire::Reader& r) {
    CommitMsg m;
    m.group = r.U64();
    m.aid = Aid::Decode(r);
    m.reply_to = r.U32();
    m.decision_vs = Viewstamp::Decode(r);
    m.fused = r.Bool();
    m.extras =
        r.Vector<CommitExtra>([&] { return CommitExtra::Decode(r); });
    return m;
  }
};

struct CommitDoneMsg {
  static constexpr MsgType kType = MsgType::kCommitDone;
  Aid aid;
  GroupId from_group = 0;
  // Redirect: the receiver was not an active primary (see PrepareStatus).
  bool wrong_primary = false;
  bool view_known = false;
  ViewId new_viewid;
  View new_view;

  void Encode(wire::Writer& w) const {
    aid.Encode(w);
    w.U64(from_group);
    w.Bool(wrong_primary);
    w.Bool(view_known);
    new_viewid.Encode(w);
    new_view.Encode(w);
  }
  static CommitDoneMsg Decode(wire::Reader& r) {
    CommitDoneMsg m;
    m.aid = Aid::Decode(r);
    m.from_group = r.U64();
    m.wrong_primary = r.Bool();
    m.view_known = r.Bool();
    m.new_viewid = ViewId::Decode(r);
    m.new_view = View::Decode(r);
    return m;
  }
};

struct AbortMsg {
  static constexpr MsgType kType = MsgType::kAbort;
  GroupId group = 0;
  Aid aid;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    aid.Encode(w);
  }
  static AbortMsg Decode(wire::Reader& r) {
    AbortMsg m;
    m.group = r.U64();
    m.aid = Aid::Decode(r);
    return m;
  }
};

struct AbortSubMsg {
  static constexpr MsgType kType = MsgType::kAbortSub;
  GroupId group = 0;
  SubAid sub_aid;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    sub_aid.Encode(w);
  }
  static AbortSubMsg Decode(wire::Reader& r) {
    AbortSubMsg m;
    m.group = r.U64();
    m.sub_aid = SubAid::Decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Outcome queries (§3.4)
// ---------------------------------------------------------------------------

enum class TxnOutcome : std::uint8_t {
  kUnknown = 0,
  kActive = 1,
  kCommitted = 2,
  kAborted = 3,
};

struct QueryMsg {
  static constexpr MsgType kType = MsgType::kQuery;
  Aid aid;
  Mid reply_to = 0;
  GroupId reply_group = 0;

  void Encode(wire::Writer& w) const {
    aid.Encode(w);
    w.U32(reply_to);
    w.U64(reply_group);
  }
  static QueryMsg Decode(wire::Reader& r) {
    QueryMsg m;
    m.aid = Aid::Decode(r);
    m.reply_to = r.U32();
    m.reply_group = r.U64();
    return m;
  }
};

struct QueryReplyMsg {
  static constexpr MsgType kType = MsgType::kQueryReply;
  Aid aid;
  TxnOutcome outcome = TxnOutcome::kUnknown;

  void Encode(wire::Writer& w) const {
    aid.Encode(w);
    w.U8(static_cast<std::uint8_t>(outcome));
  }
  static QueryReplyMsg Decode(wire::Reader& r) {
    QueryReplyMsg m;
    m.aid = Aid::Decode(r);
    std::uint8_t o = r.U8();
    if (o > 3) r.MarkBad();
    m.outcome = static_cast<TxnOutcome>(o);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Primary location probes
// ---------------------------------------------------------------------------

struct ProbeMsg {
  static constexpr MsgType kType = MsgType::kProbe;
  GroupId group = 0;
  std::uint64_t req_id = 0;
  Mid reply_to = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    w.U64(req_id);
    w.U32(reply_to);
  }
  static ProbeMsg Decode(wire::Reader& r) {
    ProbeMsg m;
    m.group = r.U64();
    m.req_id = r.U64();
    m.reply_to = r.U32();
    return m;
  }
};

struct ProbeReplyMsg {
  static constexpr MsgType kType = MsgType::kProbeReply;
  GroupId group = 0;
  std::uint64_t req_id = 0;
  bool known = false;   // the replying cohort knows a current view
  bool active = false;  // and that view is active at the replier
  ViewId viewid;
  View view;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    w.U64(req_id);
    w.Bool(known);
    w.Bool(active);
    viewid.Encode(w);
    view.Encode(w);
  }
  static ProbeReplyMsg Decode(wire::Reader& r) {
    ProbeReplyMsg m;
    m.group = r.U64();
    m.req_id = r.U64();
    m.known = r.Bool();
    m.active = r.Bool();
    m.viewid = ViewId::Decode(r);
    m.view = View::Decode(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Coordinator-server protocol for unreplicated clients (§3.5)
// ---------------------------------------------------------------------------

struct BeginTxnMsg {
  static constexpr MsgType kType = MsgType::kBeginTxn;
  GroupId group = 0;
  ViewId viewid;
  std::uint64_t req_id = 0;
  Mid reply_to = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U64(req_id);
    w.U32(reply_to);
  }
  static BeginTxnMsg Decode(wire::Reader& r) {
    BeginTxnMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.req_id = r.U64();
    m.reply_to = r.U32();
    return m;
  }
};

struct BeginTxnReplyMsg {
  static constexpr MsgType kType = MsgType::kBeginTxnReply;
  std::uint64_t req_id = 0;
  ReplyStatus status = ReplyStatus::kOk;
  Aid aid;
  bool view_known = false;
  ViewId new_viewid;
  View new_view;

  void Encode(wire::Writer& w) const {
    w.U64(req_id);
    w.U8(static_cast<std::uint8_t>(status));
    aid.Encode(w);
    w.Bool(view_known);
    new_viewid.Encode(w);
    new_view.Encode(w);
  }
  static BeginTxnReplyMsg Decode(wire::Reader& r) {
    BeginTxnReplyMsg m;
    m.req_id = r.U64();
    std::uint8_t s = r.U8();
    if (s > 2) r.MarkBad();
    m.status = static_cast<ReplyStatus>(s);
    m.aid = Aid::Decode(r);
    m.view_known = r.Bool();
    m.new_viewid = ViewId::Decode(r);
    m.new_view = View::Decode(r);
    return m;
  }
};

struct CommitReqMsg {
  static constexpr MsgType kType = MsgType::kCommitReq;
  GroupId group = 0;
  ViewId viewid;
  std::uint64_t req_id = 0;
  Aid aid;
  Pset pset;
  Mid reply_to = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U64(req_id);
    aid.Encode(w);
    w.Vector(pset, [&](const PsetEntry& e) { e.Encode(w); });
    w.U32(reply_to);
  }
  static CommitReqMsg Decode(wire::Reader& r) {
    CommitReqMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.req_id = r.U64();
    m.aid = Aid::Decode(r);
    m.pset = r.Vector<PsetEntry>([&] { return PsetEntry::Decode(r); });
    m.reply_to = r.U32();
    return m;
  }
};

struct CommitReqReplyMsg {
  static constexpr MsgType kType = MsgType::kCommitReqReply;
  std::uint64_t req_id = 0;
  TxnOutcome outcome = TxnOutcome::kUnknown;

  void Encode(wire::Writer& w) const {
    w.U64(req_id);
    w.U8(static_cast<std::uint8_t>(outcome));
  }
  static CommitReqReplyMsg Decode(wire::Reader& r) {
    CommitReqReplyMsg m;
    m.req_id = r.U64();
    std::uint8_t o = r.U8();
    if (o > 3) r.MarkBad();
    m.outcome = static_cast<TxnOutcome>(o);
    return m;
  }
};

struct AbortReqMsg {
  static constexpr MsgType kType = MsgType::kAbortReq;
  GroupId group = 0;
  Aid aid;
  Pset pset;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    aid.Encode(w);
    w.Vector(pset, [&](const PsetEntry& e) { e.Encode(w); });
  }
  static AbortReqMsg Decode(wire::Reader& r) {
    AbortReqMsg m;
    m.group = r.U64();
    m.aid = Aid::Decode(r);
    m.pset = r.Vector<PsetEntry>([&] { return PsetEntry::Decode(r); });
    return m;
  }
};

// ---------------------------------------------------------------------------
// Shard rebalancing (DESIGN.md §11)
// ---------------------------------------------------------------------------

// Primary of the pulling group → primary of the range's current owner: asks
// it to stream a shard image of [lo, hi) back via the §9 snapshot machinery.
// The chunks arrive as SnapshotChunkMsg carrying the SOURCE group's id and
// viewid; the puller tells them apart from its own intra-group transfers by
// that group field.
struct ShardPullMsg {
  static constexpr MsgType kType = MsgType::kShardPull;
  GroupId group = 0;       // destination: the range's current owner
  Mid from = 0;            // the pulling primary's mid (chunk destination)
  GroupId from_group = 0;  // the pulling group
  std::string lo;
  std::string hi;  // "" = +infinity

  void Encode(wire::Writer& w) const {
    w.U64(group);
    w.U32(from);
    w.U64(from_group);
    w.String(lo);
    w.String(hi);
  }
  static ShardPullMsg Decode(wire::Reader& r) {
    ShardPullMsg m;
    m.group = r.U64();
    m.from = r.U32();
    m.from_group = r.U64();
    m.lo = r.String();
    m.hi = r.String();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Backup read leases (DESIGN.md §14)
// ---------------------------------------------------------------------------

// Primary → backup: a per-backup read lease pinned to the granting view.
// Renewed on the existing CommBuffer ack traffic (no dedicated timer): the
// primary re-grants whenever it processes an ack from the backup and at
// least half the lease duration has elapsed since the last grant. The grant
// carries the primary's current sub-majority stable watermark so the backup
// can bound what it serves (a read is admitted only up to
// min(applied_ts, lease stable_ts)).
struct LeaseGrantMsg {
  static constexpr MsgType kType = MsgType::kLeaseGrant;
  GroupId group = 0;
  // The view this lease pins. A backup discards grants for any view other
  // than the one it is actively serving.
  ViewId viewid;
  Mid from = 0;  // the granting primary
  // Monotone per-view grant sequence; stale reorderings are dropped.
  std::uint64_t seq = 0;
  // The primary's StableTs() at grant time.
  std::uint64_t stable_ts = 0;
  // Lease validity from the moment of receipt, in host-clock units. The
  // receiver starts the clock at delivery, so clock skew shortens (never
  // lengthens) the usable window relative to the primary's intent.
  std::uint64_t duration = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    viewid.Encode(w);
    w.U32(from);
    w.U64(seq);
    w.U64(stable_ts);
    w.U64(duration);
  }
  static LeaseGrantMsg Decode(wire::Reader& r) {
    LeaseGrantMsg m;
    m.group = r.U64();
    m.viewid = ViewId::Decode(r);
    m.from = r.U32();
    m.seq = r.U64();
    m.stable_ts = r.U64();
    m.duration = r.U64();
    return m;
  }
};

// Client → any cohort of a group: read one object's committed value. The
// horizon is the highest viewstamp any value previously observed by this
// client session was served at — the cohort must refuse rather than serve
// state older than it (monotonic sessions; DESIGN.md §14).
struct BackupReadMsg {
  static constexpr MsgType kType = MsgType::kBackupRead;
  GroupId group = 0;
  std::string uid;
  Viewstamp horizon;
  std::uint64_t corr = 0;  // client correlation id, echoed in the reply
  Mid reply_to = 0;

  void Encode(wire::Writer& w) const {
    w.U64(group);
    w.String(uid);
    horizon.Encode(w);
    w.U64(corr);
    w.U32(reply_to);
  }
  static BackupReadMsg Decode(wire::Reader& r) {
    BackupReadMsg m;
    m.group = r.U64();
    m.uid = r.String();
    m.horizon = Viewstamp::Decode(r);
    m.corr = r.U64();
    m.reply_to = r.U32();
    return m;
  }
};

enum class ReadStatus : std::uint8_t {
  kOk = 0,
  // The serving cohort holds no valid lease for the current view: retry at
  // the primary and expect this member to stay leaseless for a while.
  // primary_hint names the cohort believed to be primary (0 = unknown).
  kWrongLease = 1,
  kNotFound = 2,
  // The cohort holds a valid lease but its provably-stable prefix does not
  // yet cover the client's horizon (or this object's latest committed
  // version). Transient — the watermark advances with the very next lease
  // renewal — so retry at the primary WITHOUT writing the member off.
  kTooNew = 3,
};

struct BackupReadReplyMsg {
  static constexpr MsgType kType = MsgType::kBackupReadReply;
  std::uint64_t corr = 0;
  ReadStatus status = ReadStatus::kWrongLease;
  std::vector<std::uint8_t> value;
  // The viewstamp the value is serialized at: {serving view, install ts of
  // the committed version}. The client folds it into its session horizon.
  Viewstamp served_vs;
  Mid primary_hint = 0;

  void Encode(wire::Writer& w) const {
    w.U64(corr);
    w.U8(static_cast<std::uint8_t>(status));
    w.Bytes(value);
    served_vs.Encode(w);
    w.U32(primary_hint);
  }
  static BackupReadReplyMsg Decode(wire::Reader& r) {
    BackupReadReplyMsg m;
    m.corr = r.U64();
    std::uint8_t s = r.U8();
    if (s > 3) r.MarkBad();
    m.status = static_cast<ReadStatus>(s);
    m.value = r.Bytes();
    m.served_vs = Viewstamp::Decode(r);
    m.primary_hint = r.U32();
    return m;
  }
};

// Serializes a message into a frame payload.
template <typename M>
std::vector<std::uint8_t> EncodeMsg(const M& m) {
  wire::Writer w;
  m.Encode(w);
  return w.Take();
}

}  // namespace vsr::vr
