// Snapshot state transfer (DESIGN.md §9).
//
// The communication buffer garbage-collects records once the stable
// watermark runs a window ahead of a laggard (CommBuffer::CollectGarbage),
// so a backup that is down, partitioned, or freshly added can no longer be
// caught up by replaying the record suffix. Instead the primary serves it a
// serialized gstate snapshot — object store, history, and prepared-txn
// metadata as of a viewstamp — chunked over SnapshotChunkMsg with resumable
// cumulative-offset acks, so a transfer survives loss, duplication, and
// reordering. The backup assembles and CRC-verifies the payload, installs it
// atomically (all-or-nothing), and re-enters the normal record/ack stream at
// the snapshot's timestamp.
//
// Both halves live here, transport-agnostic and unit-testable:
//   SnapshotServer  primary side — one pipelined, deadline-retransmitted
//                   transfer per lagging backup, sharing the payload bytes;
//   SnapshotSink    backup side — in-order chunk assembly, adoption of a
//                   newer snapshot mid-transfer, checksum verification.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "host/host.h"
#include "vr/messages.h"
#include "vr/types.h"

namespace vsr::vr {

struct SnapshotTransferOptions {
  // Payload bytes per SnapshotChunkMsg.
  std::size_t chunk_size = 4096;
  // Max chunks in flight past the acked offset (flow control).
  std::size_t window = 8;
  // Per-backup ack deadline: unacked chunks past it trigger a go-back-N
  // resend from the acked offset (mirrors CommBuffer's record deadlines).
  host::Duration retransmit_interval = 20 * host::kMillisecond;
  // Sink side: if no chunk of an in-flight transfer arrives for this long,
  // the partial payload is discarded wholesale (all-or-nothing) and the
  // cohort stops answering view changes as crashed-equivalent. The serving
  // primary retransmits on a much shorter deadline, so an idle stream means
  // it crashed or stood down; without this escape a mid-transfer primary
  // crash would leave the backup crashed-equivalent forever and could wedge
  // view formation permanently (§4's conditions).
  host::Duration install_abandon_timeout = 200 * host::kMillisecond;
};

class SnapshotServer {
 public:
  // send(to, chunk) transmits one chunk to one backup.
  SnapshotServer(host::Host& hst, SnapshotTransferOptions options,
                 std::function<void(Mid, const SnapshotChunkMsg&)> send);
  ~SnapshotServer() { Stop(); }
  SnapshotServer(const SnapshotServer&) = delete;
  SnapshotServer& operator=(const SnapshotServer&) = delete;

  // Begins operating for a view this cohort leads; Stop() cancels every
  // transfer (the cohort stopped being primary, or crashed).
  void StartView(ViewId viewid, GroupId group, Mid self);
  void Stop();

  // Begins (or refreshes) a transfer to `backup` of the snapshot identified
  // by `vs`. A transfer of an older snapshot to the same backup is replaced;
  // re-serving the same vs keeps the existing transfer's progress. The
  // payload is shared, never copied per backup.
  void Serve(Mid backup, Viewstamp vs,
             std::shared_ptr<const std::vector<std::uint8_t>> payload);

  // Cumulative-offset ack from a backup. Completion (offset == total) ends
  // the transfer; an offset of 0 on a part-way transfer rewinds it (the sink
  // restarted, e.g. after a checksum reject).
  void OnAck(const SnapshotAckMsg& ack);

  bool Serving(Mid backup) const { return transfers_.count(backup) != 0; }

  struct Stats {
    std::uint64_t transfers_started = 0;
    std::uint64_t transfers_completed = 0;
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunk_retransmits = 0;  // chunks re-sent after a deadline
    std::uint64_t bytes_sent = 0;         // payload bytes, including resends
    std::uint64_t acks_rejected = 0;      // wrong view/group/vs/offset
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Transfer {
    Viewstamp vs;
    std::shared_ptr<const std::vector<std::uint8_t>> payload;
    std::uint32_t checksum = 0;
    std::uint64_t acked = 0;  // cumulative contiguous bytes acknowledged
    std::uint64_t sent = 0;   // send cursor (bytes)
    host::Time deadline = 0;
  };

  void Pump(Mid backup, Transfer& t);
  void ArmTimer();
  void CheckDeadlines();

  host::Host& host_;
  SnapshotTransferOptions options_;
  std::function<void(Mid, const SnapshotChunkMsg&)> send_;

  bool active_ = false;
  ViewId viewid_;
  GroupId group_ = 0;
  Mid self_ = 0;
  std::map<Mid, Transfer> transfers_;
  host::TimerId retransmit_timer_ = host::kNoTimer;
  Stats stats_;
};

// Backup-side chunk assembly. Feed every SnapshotChunkMsg addressed to this
// cohort; after each accepted chunk the caller acks offset(). When
// complete() turns true the verified payload is ready to install; the caller
// then Reset()s the sink. The sink is oblivious to views — the cohort gates
// chunks on (viewid, primary) before feeding it and resets it on any view
// transition.
class SnapshotSink {
 public:
  // Consumes one chunk. Returns true if the caller should ack (the chunk
  // matched the active transfer — even a duplicate, so the sender realigns);
  // false if it was ignored (an older snapshot's stray chunk, or a forged
  // total/checksum mismatch).
  bool OnChunk(const SnapshotChunkMsg& m);

  bool active() const { return active_; }
  bool complete() const { return complete_; }
  Viewstamp vs() const { return vs_; }
  // Cumulative contiguous bytes received (the value to ack).
  std::uint64_t offset() const { return buf_.size(); }
  const std::vector<std::uint8_t>& payload() const { return buf_; }

  // Checksum rejects: a fully-assembled payload whose CRC-32 did not match.
  // The transfer restarts from offset 0.
  std::uint64_t corrupt_payloads() const { return corrupt_payloads_; }

  void Reset();

 private:
  bool active_ = false;
  bool complete_ = false;
  Viewstamp vs_;
  std::uint64_t total_ = 0;
  std::uint32_t checksum_ = 0;
  std::vector<std::uint8_t> buf_;
  std::uint64_t corrupt_payloads_ = 0;
};

}  // namespace vsr::vr
