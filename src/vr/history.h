// The cohort history (§2, Fig. 1): a sequence of viewstamps, one per view the
// cohort has participated in, with strictly increasing viewids.
//
// Invariant (the paper's key property): for each viewstamp v in the history,
// the cohort's state reflects event e from view v.id iff e's timestamp is
// <= v.ts. Because the primary streams event records in timestamp order, a
// cohort with a later viewstamp for some view knows everything a cohort with
// an earlier viewstamp for that view knows.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "vr/types.h"
#include "wire/buffer.h"

namespace vsr::vr {

class History {
 public:
  History() = default;

  // Opens a new view. Requires vid greater than every viewid already present
  // (viewids are totally ordered and views are entered in order).
  void OpenView(ViewId vid) {
    entries_.push_back(Viewstamp{vid, 0});
  }

  // Advances the timestamp of the current (last) view to `ts`.
  void Advance(std::uint64_t ts) {
    entries_.back().ts = ts;
  }

  bool Empty() const { return entries_.empty(); }

  // The cohort's current viewstamp: the entry for the latest view. A fresh
  // cohort that has never joined a view reports the zero viewstamp, which is
  // smaller than any real one.
  Viewstamp Latest() const {
    if (entries_.empty()) return Viewstamp{};
    return entries_.back();
  }

  // True iff this history covers event viewstamp v — i.e. the state reflects
  // the event v names. This is the paper's `compatible` test for one entry:
  // ∃ h in history: h.id = v.id ∧ v.ts <= h.ts.
  bool Knows(const Viewstamp& v) const {
    for (const Viewstamp& h : entries_) {
      if (h.view == v.view) return v.ts <= h.ts;
    }
    return false;
  }

  std::optional<std::uint64_t> TsOfView(ViewId vid) const {
    for (const Viewstamp& h : entries_) {
      if (h.view == vid) return h.ts;
    }
    return std::nullopt;
  }

  const std::vector<Viewstamp>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  static History FromEntries(std::vector<Viewstamp> entries) {
    History h;
    h.entries_ = std::move(entries);
    return h;
  }

  bool operator==(const History&) const = default;

  void Encode(wire::Writer& w) const {
    w.Vector(entries_, [&](const Viewstamp& v) { v.Encode(w); });
  }
  static History Decode(wire::Reader& r) {
    History h;
    h.entries_ = r.Vector<Viewstamp>([&] { return Viewstamp::Decode(r); });
    return h;
  }

  std::string ToString() const {
    std::string s = "[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) s += " ";
      s += entries_[i].ToString();
    }
    return s + "]";
  }

 private:
  std::vector<Viewstamp> entries_;
};

// The paper's compatible(ps, g, vh) predicate (§3.2): every pset entry for
// group g must be covered by the history vh. A transaction may prepare at a
// participant only if all calls it ran at that group survived into the
// participant's current view.
inline bool Compatible(const Pset& ps, GroupId g, const History& vh) {
  for (const PsetEntry& p : ps) {
    if (p.groupid != g) continue;
    if (!vh.Knows(p.vs)) return false;
  }
  return true;
}

// The paper's vs_max(ps, g) (§3.2): the largest viewstamp among the pset
// entries for group g — the latest "completed-call" event that must be known
// to a sub-majority of backups before the participant may agree to prepare.
// Returns nullopt if the pset has no entry for g.
inline std::optional<Viewstamp> VsMax(const Pset& ps, GroupId g) {
  std::optional<Viewstamp> best;
  for (const PsetEntry& p : ps) {
    if (p.groupid != g) continue;
    if (!best || *best < p.vs) best = p.vs;
  }
  return best;
}

// Merges the entries of `from` into `into`, deduplicating. Order-preserving
// (new entries append in `from` order), but membership is tested against a
// sorted index instead of a pairwise scan — the coordinator merges a reply
// pset on every call, so large cross-group psets would otherwise make the
// hot path O(n·m).
inline void MergePset(Pset& into, const Pset& from) {
  if (from.empty()) return;
  std::set<PsetEntry> seen(into.begin(), into.end());
  for (const PsetEntry& e : from) {
    if (seen.insert(e).second) into.push_back(e);
  }
}

// Removes the entries a discarded subaction contributed (§3.6): when a call
// attempt is aborted, its completed-call events no longer gate the commit.
// Nested calls made on behalf of the attempt inherit its subaction number,
// so erasing by `sub` covers every group the attempt touched.
inline void ErasePsetSub(Pset& ps, std::uint32_t sub) {
  std::erase_if(ps, [&](const PsetEntry& e) { return e.sub == sub; });
}

// The distinct groups named by a pset — the participant set for two-phase
// commit (§3.1: "It determines who the participants are from the pset").
inline std::vector<GroupId> PsetGroups(const Pset& ps) {
  std::vector<GroupId> out;
  for (const PsetEntry& e : ps) {
    if (std::find(out.begin(), out.end(), e.groupid) == out.end()) {
      out.push_back(e.groupid);
    }
  }
  return out;
}

}  // namespace vsr::vr
