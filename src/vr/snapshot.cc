#include "vr/snapshot.h"

#include <algorithm>
#include <cassert>

#include "wire/buffer.h"

namespace vsr::vr {

// ---------------------------------------------------------------------------
// SnapshotServer (primary side)
// ---------------------------------------------------------------------------

SnapshotServer::SnapshotServer(
    host::Host& hst, SnapshotTransferOptions options,
    std::function<void(Mid, const SnapshotChunkMsg&)> send)
    : host_(hst), options_(options), send_(std::move(send)) {}

void SnapshotServer::StartView(ViewId viewid, GroupId group, Mid self) {
  Stop();
  active_ = true;
  viewid_ = viewid;
  group_ = group;
  self_ = self;
}

void SnapshotServer::Stop() {
  active_ = false;
  transfers_.clear();
  host_.timers().Cancel(retransmit_timer_);
  retransmit_timer_ = host::kNoTimer;
}

void SnapshotServer::Serve(
    Mid backup, Viewstamp vs,
    std::shared_ptr<const std::vector<std::uint8_t>> payload) {
  if (!active_) return;
  assert(payload && !payload->empty());
  auto it = transfers_.find(backup);
  if (it != transfers_.end() && it->second.vs >= vs) {
    return;  // already serving this snapshot (or a newer one): keep progress
  }
  Transfer& t = transfers_[backup];
  t = Transfer{};
  t.vs = vs;
  t.payload = std::move(payload);
  t.checksum = wire::Crc32(std::span<const std::uint8_t>(*t.payload));
  ++stats_.transfers_started;
  Pump(backup, t);
  ArmTimer();
}

// Advances `backup`'s chunk cursor up to the in-flight window, mirroring
// CommBuffer::SendTo at byte granularity.
void SnapshotServer::Pump(Mid backup, Transfer& t) {
  const std::uint64_t total = t.payload->size();
  const std::uint64_t limit = std::min(
      total, t.acked + options_.window * options_.chunk_size);
  while (t.sent < limit) {
    const std::uint64_t lo = t.sent;
    const std::uint64_t hi = std::min(limit, lo + options_.chunk_size);
    SnapshotChunkMsg m;
    m.group = group_;
    m.viewid = viewid_;
    m.from = self_;
    m.vs = t.vs;
    m.total_size = total;
    m.checksum = t.checksum;
    m.offset = lo;
    m.data.assign(t.payload->begin() + static_cast<std::ptrdiff_t>(lo),
                  t.payload->begin() + static_cast<std::ptrdiff_t>(hi));
    t.sent = hi;
    ++stats_.chunks_sent;
    stats_.bytes_sent += hi - lo;
    send_(backup, m);
  }
  t.deadline = t.sent > t.acked
                   ? host_.Now() + options_.retransmit_interval
                   : 0;
}

void SnapshotServer::OnAck(const SnapshotAckMsg& ack) {
  if (!active_ || ack.viewid != viewid_ || ack.group != group_) {
    ++stats_.acks_rejected;
    return;
  }
  auto it = transfers_.find(ack.from);
  if (it == transfers_.end()) return;  // transfer already completed/replaced
  Transfer& t = it->second;
  if (ack.vs != t.vs || ack.offset > t.payload->size()) {
    ++stats_.acks_rejected;
    return;
  }
  if (ack.offset >= t.payload->size()) {
    // Whole payload verified by the backup; its BufferAck re-enters the
    // record stream and CommBuffer clears state-transfer mode.
    ++stats_.transfers_completed;
    transfers_.erase(it);
    ArmTimer();
    return;
  }
  if (ack.offset > t.acked) {
    t.acked = ack.offset;
    if (t.sent < t.acked) t.sent = t.acked;
    t.deadline = host_.Now() + options_.retransmit_interval;
    Pump(ack.from, t);
  } else if (ack.offset == 0 && t.acked > 0) {
    // The sink restarted from scratch (checksum reject): rewind.
    t.acked = 0;
    t.sent = 0;
    Pump(ack.from, t);
  }
  ArmTimer();
}

void SnapshotServer::ArmTimer() {
  host::Time next = 0;
  for (const auto& [mid, t] : transfers_) {
    if (t.deadline != 0 && (next == 0 || t.deadline < next)) {
      next = t.deadline;
    }
  }
  host_.timers().Cancel(retransmit_timer_);
  retransmit_timer_ = host::kNoTimer;
  if (next == 0) return;
  retransmit_timer_ =
      host_.timers().At(next, [this] { CheckDeadlines(); });
}

void SnapshotServer::CheckDeadlines() {
  retransmit_timer_ = host::kNoTimer;
  if (!active_) return;
  const host::Time now = host_.Now();
  for (auto& [backup, t] : transfers_) {
    if (t.deadline == 0 || t.deadline > now) continue;
    // Unacked chunks outlived their deadline: go-back-N from the ack.
    stats_.chunk_retransmits +=
        (t.sent - t.acked + options_.chunk_size - 1) / options_.chunk_size;
    t.sent = t.acked;
    Pump(backup, t);
  }
  ArmTimer();
}

// ---------------------------------------------------------------------------
// SnapshotSink (backup side)
// ---------------------------------------------------------------------------

void SnapshotSink::Reset() {
  active_ = false;
  complete_ = false;
  vs_ = Viewstamp{};
  total_ = 0;
  checksum_ = 0;
  buf_.clear();
}

bool SnapshotSink::OnChunk(const SnapshotChunkMsg& m) {
  if (active_ && m.vs < vs_) return false;  // stray chunk of an older snapshot
  if (!active_ || m.vs > vs_) {
    // First chunk seen, or the primary moved on to a fresher snapshot
    // mid-transfer: adopt it (partial bytes of the old one are useless).
    Reset();
    active_ = true;
    vs_ = m.vs;
    total_ = m.total_size;
    checksum_ = m.checksum;
  }
  if (m.total_size != total_ || m.checksum != checksum_) {
    return false;  // inconsistent with the transfer's own framing: forged
  }
  if (complete_) return true;  // duplicate tail chunk: re-ack completion
  if (m.offset != buf_.size()) {
    // Out of order. Ack the current contiguous offset anyway so the sender
    // realigns (a lost-chunk hole rewinds it; a duplicate is idempotent).
    return true;
  }
  buf_.insert(buf_.end(), m.data.begin(), m.data.end());
  if (buf_.size() < total_) return true;
  if (wire::Crc32(std::span<const std::uint8_t>(buf_)) != checksum_) {
    // Assembled payload fails verification: discard every byte and restart
    // the transfer (install is all-or-nothing). The offset-0 ack rewinds
    // the server.
    ++corrupt_payloads_;
    const Viewstamp vs = vs_;
    const std::uint64_t total = total_;
    const std::uint32_t checksum = checksum_;
    Reset();
    active_ = true;
    vs_ = vs;
    total_ = total;
    checksum_ = checksum;
    return true;
  }
  complete_ = true;
  return true;
}

}  // namespace vsr::vr
