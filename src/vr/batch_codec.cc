#include "vr/batch_codec.h"

#include <cassert>
#include <utility>

namespace vsr::vr {

namespace {

// Record tag byte (§8.4.2). The 3 type bits cover EventType 0..6 directly;
// tag value 7 (kTagShard) is an escape for the shard-rebalance records
// (kShardInstall/kShardDrop), whose actual type is a subtype byte that
// follows — the tag space was full when they were added.
constexpr std::uint8_t kTypeMask = 0x07;
constexpr std::uint8_t kTagShard = 0x07;
constexpr std::uint8_t kTagHasCall = 0x08;
constexpr std::uint8_t kTagSameAid = 0x10;
constexpr std::uint8_t kTagHasEffects = 0x20;
constexpr std::uint8_t kTagHasPlist = 0x40;

// Effect op byte (§8.4.3).
constexpr std::uint8_t kUidOpMask = 0x03;
constexpr std::uint8_t kUidHit = 0;      // varint slot follows
constexpr std::uint8_t kUidInsert = 1;   // var-string uid; enters the dict
constexpr std::uint8_t kUidLiteral = 2;  // var-string uid; bypasses the dict
constexpr std::uint8_t kOpWrite = 0x04;
constexpr std::uint8_t kOpHasTentative = 0x08;
constexpr std::uint8_t kOpDelta = 0x10;

void PutVarString(wire::Writer& w, std::string_view s) {
  w.Varint(s.size());
  w.Raw(s);
}

void PutVarBytes(wire::Writer& w, const std::vector<std::uint8_t>& b) {
  w.Varint(b.size());
  w.Raw(std::span<const std::uint8_t>(b));
}

std::string GetVarString(wire::Reader& r) {
  const std::uint64_t n = r.Varint();
  if (n > r.Remaining()) {
    r.MarkBad();
    return {};
  }
  return r.RawString(static_cast<std::size_t>(n));
}

std::vector<std::uint8_t> GetVarBytes(wire::Reader& r) {
  const std::uint64_t n = r.Varint();
  if (n > r.Remaining()) {
    r.MarkBad();
    return {};
  }
  return r.Raw(static_cast<std::size_t>(n));
}

std::uint32_t GetVar32(wire::Reader& r) {
  const std::uint64_t v = r.Varint();
  if (v > UINT32_MAX) {
    r.MarkBad();
    return 0;
  }
  return static_cast<std::uint32_t>(v);
}

// Element count prefix of a variable section: each element costs at least
// one byte, so a count beyond the remaining input is malformed (and a huge
// forged count must not drive a huge reserve()).
std::uint64_t GetVarCount(wire::Reader& r) {
  const std::uint64_t n = r.Varint();
  if (n > r.Remaining()) {
    r.MarkBad();
    return 0;
  }
  return n;
}

void PutAid(wire::Writer& w, const Aid& a) {
  w.Varint(a.coordinator_group);
  w.Varint(a.view.counter);
  w.Varint(a.view.mid);
  w.Varint(a.seq);
}

Aid GetAid(wire::Reader& r) {
  Aid a;
  a.coordinator_group = r.Varint();
  a.view.counter = r.Varint();
  a.view.mid = GetVar32(r);
  a.seq = r.Varint();
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

BatchEncoder::BatchEncoder(std::size_t dict_capacity)
    : dict_(dict_capacity), ckpt_dict_(dict_capacity) {}

void BatchEncoder::ForceReset() {
  next_ts_ = 0;
  ckpt_valid_ = false;
}

void BatchEncoder::AdvanceCheckpoint(std::uint64_t acked_ts,
                                     const std::vector<EventRecord>& records,
                                     std::uint64_t base_ts) {
  if (!ckpt_valid_ || acked_ts < ckpt_ts_) return;
  if (ckpt_ts_ <= base_ts || acked_ts > base_ts + records.size()) {
    // Part of [ckpt_ts, acked_ts] is not resident (GC'd below, or an ack
    // overtook the stream entirely): the checkpoint can no longer be kept in
    // step with the decoder, so future resends must reset.
    ckpt_valid_ = false;
    return;
  }
  for (std::uint64_t ts = ckpt_ts_; ts <= acked_ts; ++ts) {
    ReplayMutations(records[static_cast<std::size_t>(ts - base_ts - 1)]);
  }
  ckpt_ts_ = acked_ts + 1;
}

// Applies exactly the dictionary / aid / call_seq mutations EncodeRecord
// performs — against the checkpoint copies, writing no bytes — so the
// checkpoint tracks what the decoder's state is after consuming the record.
void BatchEncoder::ReplayMutations(const EventRecord& e) {
  // kNewView and the shard records encode without mutating codec state.
  if (e.type == EventType::kNewView || e.type == EventType::kShardInstall ||
      e.type == EventType::kShardDrop) {
    return;
  }
  if (!(ckpt_have_last_aid_ && e.sub_aid.aid == ckpt_last_aid_)) {
    ckpt_last_aid_ = e.sub_aid.aid;
    ckpt_have_last_aid_ = true;
  }
  for (const ObjectEffect& fx : e.effects) {
    std::optional<std::uint32_t> slot = ckpt_dict_.Find(fx.uid);
    if (!slot && fx.uid.size() <= kMaxDictUid) {
      slot = ckpt_dict_.Insert(fx.uid);
    }
    if (fx.tentative && slot) ckpt_dict_.SetBase(*slot, *fx.tentative);
  }
  const bool has_call = e.type == EventType::kCompletedCall &&
                        (e.call_seq != 0 || !e.result.empty() ||
                         !e.nested_pset.empty());
  if (has_call) ckpt_prev_call_seq_ = e.call_seq;
}

void BatchEncoder::EncodeBody(wire::Writer& w,
                              const std::vector<EventRecord>& events) {
  assert(!events.empty());
  const std::uint64_t first_ts = events.front().ts;
  const bool continues = next_ts_ != 0 && first_ts == next_ts_;
  // A retransmission rewinds exactly to the backup's cumulative ack — which
  // is where the checkpoint sits. Restoring the checkpoint re-encodes the
  // resent range as an in-sequence continuation of the live generation,
  // keeping the dictionary (and its delta bases) instead of resetting.
  const bool rewind =
      !continues && ckpt_valid_ && gen_ != 0 && first_ts == ckpt_ts_;
  if (rewind) {
    dict_ = ckpt_dict_;
    have_last_aid_ = ckpt_have_last_aid_;
    last_aid_ = ckpt_last_aid_;
    prev_call_seq_ = ckpt_prev_call_seq_;
    ++stats_.rewinds;
  }
  // Any other discontinuity — view start, a receiver that asked for a reset,
  // or a send this encoder cannot reconstruct — invalidates the receiver's
  // dictionary state, so start a fresh generation from an empty dictionary.
  const bool reset = !continues && !rewind;
  if (reset) {
    ++gen_;
    dict_.Reset();
    have_last_aid_ = false;
    prev_call_seq_ = 0;
    ++stats_.resets;
    // The new generation starts here: checkpoint its (empty) opening state.
    // A checkpoint from the dead generation would emit continuations the
    // decoder drops as stale forever.
    ckpt_valid_ = true;
    ckpt_ts_ = first_ts;
    ckpt_have_last_aid_ = false;
    ckpt_last_aid_ = Aid{};
    ckpt_prev_call_seq_ = 0;
    ckpt_dict_.Reset();
  }
  const std::size_t start = w.size();
  w.Varint(gen_);
  w.U8(reset ? 1 : 0);
  w.Varint(first_ts);
  w.Varint(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Batches are contiguous timestamp runs (CommBuffer::SendRange slices
    // them out of the record vector); the decoder reconstructs ts from the
    // header, so it is never on the wire per record.
    assert(events[i].ts == first_ts + i);
    EncodeRecord(w, events[i]);
  }
  next_ts_ = events.back().ts + 1;
  ++stats_.batches;
  stats_.records += events.size();
  stats_.bytes_out += w.size() - start;
}

void BatchEncoder::EncodeRecord(wire::Writer& w, const EventRecord& e) {
  if (e.type == EventType::kShardInstall || e.type == EventType::kShardDrop) {
    w.U8(kTagShard);
    w.U8(e.type == EventType::kShardInstall ? 0 : 1);
    PutVarBytes(w, e.gstate);
    return;
  }
  std::uint8_t tag = static_cast<std::uint8_t>(e.type) & kTypeMask;
  if (e.type == EventType::kNewView) {
    w.U8(tag);
    w.Varint(e.view.primary);
    w.Varint(e.view.backups.size());
    for (Mid m : e.view.backups) w.Varint(m);
    w.Varint(e.history.entries().size());
    for (const Viewstamp& vs : e.history.entries()) {
      w.Varint(vs.view.counter);
      w.Varint(vs.view.mid);
      w.Varint(vs.ts);
    }
    PutVarBytes(w, e.gstate);
    return;
  }
  const bool has_call = e.type == EventType::kCompletedCall &&
                        (e.call_seq != 0 || !e.result.empty() ||
                         !e.nested_pset.empty());
  const bool same_aid = have_last_aid_ && e.sub_aid.aid == last_aid_;
  if (has_call) tag |= kTagHasCall;
  if (same_aid) tag |= kTagSameAid;
  if (!e.effects.empty()) tag |= kTagHasEffects;
  if (!e.plist.empty()) tag |= kTagHasPlist;
  w.U8(tag);
  if (!same_aid) {
    PutAid(w, e.sub_aid.aid);
    last_aid_ = e.sub_aid.aid;
    have_last_aid_ = true;
  }
  w.Varint(e.sub_aid.sub);
  if (!e.effects.empty()) {
    w.Varint(e.effects.size());
    for (const ObjectEffect& fx : e.effects) EncodeEffect(w, fx);
  }
  if (has_call) {
    // Call sequence numbers are (caller mid << 32 | counter): consecutive
    // calls from one client differ by 1, so the zig-zag delta is one byte in
    // steady state.
    w.ZigZag(static_cast<std::int64_t>(e.call_seq - prev_call_seq_));
    prev_call_seq_ = e.call_seq;
    PutVarBytes(w, e.result);
    w.Varint(e.nested_pset.size());
    for (const PsetEntry& p : e.nested_pset) {
      w.Varint(p.groupid);
      w.Varint(p.vs.view.counter);
      w.Varint(p.vs.view.mid);
      w.Varint(p.vs.ts);
      w.Varint(p.sub);
    }
  }
  if (!e.plist.empty()) {
    w.Varint(e.plist.size());
    for (GroupId g : e.plist) w.Varint(g);
  }
}

void BatchEncoder::EncodeEffect(wire::Writer& w, const ObjectEffect& fx) {
  std::optional<std::uint32_t> slot = dict_.Find(fx.uid);
  std::uint8_t uid_op;
  if (slot) {
    uid_op = kUidHit;
    ++stats_.dict_hits;
  } else if (fx.uid.size() <= kMaxDictUid) {
    uid_op = kUidInsert;
    ++stats_.dict_inserts;
  } else {
    uid_op = kUidLiteral;
  }
  bool use_delta = false;
  wire::ByteDelta delta;
  if (fx.tentative && uid_op == kUidHit) {
    delta = wire::DiffBytes(dict_.BaseAt(*slot), *fx.tentative);
    const std::size_t delta_size =
        wire::VarintSize(delta.prefix) + wire::VarintSize(delta.suffix) +
        wire::VarintSize(delta.mid.size()) + delta.mid.size();
    const std::size_t literal_size =
        wire::VarintSize(fx.tentative->size()) + fx.tentative->size();
    use_delta = delta_size < literal_size;
  }
  std::uint8_t op = uid_op;
  if (fx.mode == LockMode::kWrite) op |= kOpWrite;
  if (fx.tentative) op |= kOpHasTentative;
  if (use_delta) op |= kOpDelta;
  w.U8(op);
  switch (uid_op) {
    case kUidHit:
      w.Varint(*slot);
      break;
    case kUidInsert:
      PutVarString(w, fx.uid);
      slot = dict_.Insert(fx.uid);
      break;
    default:
      PutVarString(w, fx.uid);
      break;
  }
  if (fx.tentative) {
    if (use_delta) {
      w.Varint(delta.prefix);
      w.Varint(delta.suffix);
      PutVarString(w, delta.mid);
      ++stats_.tentative_deltas;
    } else {
      PutVarString(w, *fx.tentative);
      ++stats_.tentative_literals;
    }
    // The slot's base tracks the last replicated version, so the next write
    // to this key deltas against what the decoder now holds.
    if (slot) dict_.SetBase(*slot, *fx.tentative);
  }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

BatchDecoder::BatchDecoder(std::size_t dict_capacity) : dict_(dict_capacity) {}

void BatchDecoder::Reset() {
  bound_ = false;
  needs_reset_ = false;
  viewid_ = ViewId{};
  from_ = 0;
  gen_ = 0;
  next_ts_ = 0;
  have_last_aid_ = false;
  last_aid_ = Aid{};
  prev_call_seq_ = 0;
  dict_.Reset();
}

BatchOutcome BatchDecoder::DecodeBody(wire::Reader& r, ViewId viewid, Mid from,
                                      std::vector<EventRecord>& out,
                                      std::uint64_t& last_ts) {
  const std::uint64_t gen = r.Varint();
  const std::uint8_t flags = r.U8();
  const std::uint64_t first_ts = r.Varint();
  const std::uint64_t count = GetVarCount(r);
  if (!r.ok() || flags > 1 || gen == 0 || first_ts == 0 || count == 0) {
    r.MarkBad();
    return BatchOutcome::kBad;
  }
  last_ts = first_ts + count - 1;
  const bool reset = (flags & 1) != 0;
  const bool same_stream = bound_ && viewid == viewid_ && from == from_;
  if (reset) {
    // A duplicated reset batch must not replay: re-running its dictionary
    // mutations would rewind state the encoder has since moved past.
    if (same_stream && gen <= gen_) return BatchOutcome::kStale;
  } else {
    if (!same_stream || gen > gen_) {
      // Nothing short of a reset batch can bind (or re-bind) the stream.
      needs_reset_ = true;
      return BatchOutcome::kUnsynced;
    }
    if (gen < gen_ || first_ts < next_ts_) return BatchOutcome::kStale;
    if (first_ts > next_ts_) {
      // A pure hole: an in-sequence continuation (the primary's rewound
      // resend of (next_ts, ...]) heals it without resetting.
      needs_reset_ = false;
      return BatchOutcome::kUnsynced;
    }
  }

  // Decode against a trial copy: a batch either commits whole or leaves the
  // decoder exactly as it was (no partial dictionary mutations).
  BatchDecoder trial = *this;
  if (reset) {
    trial.bound_ = true;
    trial.viewid_ = viewid;
    trial.from_ = from;
    trial.gen_ = gen;
    trial.have_last_aid_ = false;
    trial.prev_call_seq_ = 0;
    trial.dict_.Reset();
  }
  std::vector<EventRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    records.push_back(trial.DecodeRecord(r, first_ts + i));
  }
  if (!r.ok()) {
    // A batch that bound to this stream but does not parse poisons it: force
    // every later in-sequence batch to kUnsynced so the cohort nacks and the
    // primary's resend re-opens the stream with a reset batch.
    bound_ = false;
    return BatchOutcome::kBad;
  }
  trial.next_ts_ = first_ts + count;
  *this = std::move(trial);
  out = std::move(records);
  return BatchOutcome::kOk;
}

EventRecord BatchDecoder::DecodeRecord(wire::Reader& r, std::uint64_t ts) {
  EventRecord e;
  e.ts = ts;
  const std::uint8_t tag = r.U8();
  const std::uint8_t t = tag & kTypeMask;
  if (tag & 0x80) {
    r.MarkBad();
    return e;
  }
  if (t == kTagShard) {
    if (tag & (kTagHasCall | kTagSameAid | kTagHasEffects | kTagHasPlist)) {
      r.MarkBad();
      return e;
    }
    const std::uint8_t sub = r.U8();
    if (sub > 1) {
      r.MarkBad();
      return e;
    }
    e.type = sub == 0 ? EventType::kShardInstall : EventType::kShardDrop;
    e.gstate = GetVarBytes(r);
    return e;
  }
  e.type = static_cast<EventType>(t);
  if (e.type == EventType::kNewView) {
    if (tag & (kTagHasCall | kTagSameAid | kTagHasEffects | kTagHasPlist)) {
      r.MarkBad();
      return e;
    }
    e.view.primary = GetVar32(r);
    const std::uint64_t nb = GetVarCount(r);
    e.view.backups.reserve(static_cast<std::size_t>(nb));
    for (std::uint64_t i = 0; i < nb && r.ok(); ++i) {
      e.view.backups.push_back(GetVar32(r));
    }
    const std::uint64_t nh = GetVarCount(r);
    std::vector<Viewstamp> entries;
    entries.reserve(static_cast<std::size_t>(nh));
    for (std::uint64_t i = 0; i < nh && r.ok(); ++i) {
      Viewstamp vs;
      vs.view.counter = r.Varint();
      vs.view.mid = GetVar32(r);
      vs.ts = r.Varint();
      entries.push_back(vs);
    }
    e.history = History::FromEntries(std::move(entries));
    e.gstate = GetVarBytes(r);
    return e;
  }
  if (tag & kTagSameAid) {
    if (!have_last_aid_) {
      r.MarkBad();
      return e;
    }
    e.sub_aid.aid = last_aid_;
  } else {
    e.sub_aid.aid = GetAid(r);
    last_aid_ = e.sub_aid.aid;
    have_last_aid_ = true;
  }
  e.sub_aid.sub = GetVar32(r);
  if (tag & kTagHasEffects) {
    const std::uint64_t n = GetVarCount(r);
    e.effects.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      e.effects.push_back(DecodeEffect(r));
    }
  }
  if (tag & kTagHasCall) {
    if (e.type != EventType::kCompletedCall) {
      r.MarkBad();
      return e;
    }
    e.call_seq = prev_call_seq_ + static_cast<std::uint64_t>(r.ZigZag());
    prev_call_seq_ = e.call_seq;
    e.result = GetVarBytes(r);
    const std::uint64_t n = GetVarCount(r);
    e.nested_pset.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      PsetEntry p;
      p.groupid = r.Varint();
      p.vs.view.counter = r.Varint();
      p.vs.view.mid = GetVar32(r);
      p.vs.ts = r.Varint();
      p.sub = GetVar32(r);
      e.nested_pset.push_back(p);
    }
  }
  if (tag & kTagHasPlist) {
    const std::uint64_t n = GetVarCount(r);
    e.plist.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      e.plist.push_back(r.Varint());
    }
  }
  return e;
}

ObjectEffect BatchDecoder::DecodeEffect(wire::Reader& r) {
  ObjectEffect fx;
  const std::uint8_t op = r.U8();
  const std::uint8_t uid_op = op & kUidOpMask;
  const bool has_tentative = (op & kOpHasTentative) != 0;
  const bool use_delta = (op & kOpDelta) != 0;
  if ((op & ~(kUidOpMask | kOpWrite | kOpHasTentative | kOpDelta)) != 0 ||
      uid_op > kUidLiteral || (use_delta && uid_op != kUidHit) ||
      (use_delta && !has_tentative)) {
    r.MarkBad();
    return fx;
  }
  fx.mode = (op & kOpWrite) ? LockMode::kWrite : LockMode::kRead;
  std::optional<std::uint32_t> slot;
  switch (uid_op) {
    case kUidHit: {
      const std::uint32_t s = GetVar32(r);
      if (!r.ok() || !dict_.ValidSlot(s)) {
        r.MarkBad();
        return fx;
      }
      fx.uid = dict_.UidAt(s);
      slot = s;
      break;
    }
    case kUidInsert: {
      fx.uid = GetVarString(r);
      if (!r.ok() || fx.uid.size() > kMaxDictUid) {
        r.MarkBad();
        return fx;
      }
      slot = dict_.Insert(fx.uid);
      break;
    }
    default:
      fx.uid = GetVarString(r);
      break;
  }
  if (has_tentative) {
    std::string value;
    if (use_delta) {
      const std::uint64_t prefix = r.Varint();
      const std::uint64_t suffix = r.Varint();
      const std::string mid = GetVarString(r);
      if (!r.ok()) return fx;
      auto applied = wire::ApplyDelta(dict_.BaseAt(*slot), prefix, suffix, mid);
      if (!applied) {
        r.MarkBad();
        return fx;
      }
      value = std::move(*applied);
    } else {
      value = GetVarString(r);
      if (!r.ok()) return fx;
    }
    if (slot) dict_.SetBase(*slot, value);
    fx.tentative = std::move(value);
  }
  return fx;
}

}  // namespace vsr::vr
