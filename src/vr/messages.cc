#include "vr/messages.h"

namespace vsr::vr {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kInvite:
      return "invite";
    case MsgType::kAccept:
      return "accept";
    case MsgType::kInitView:
      return "init-view";
    case MsgType::kBufferBatch:
      return "buffer-batch";
    case MsgType::kBufferAck:
      return "buffer-ack";
    case MsgType::kSnapshotChunk:
      return "snapshot-chunk";
    case MsgType::kSnapshotAck:
      return "snapshot-ack";
    case MsgType::kCall:
      return "call";
    case MsgType::kReply:
      return "reply";
    case MsgType::kPrepare:
      return "prepare";
    case MsgType::kPrepareReply:
      return "prepare-reply";
    case MsgType::kCommit:
      return "commit";
    case MsgType::kCommitDone:
      return "commit-done";
    case MsgType::kAbort:
      return "abort";
    case MsgType::kAbortSub:
      return "abort-sub";
    case MsgType::kQuery:
      return "query";
    case MsgType::kQueryReply:
      return "query-reply";
    case MsgType::kProbe:
      return "probe";
    case MsgType::kProbeReply:
      return "probe-reply";
    case MsgType::kBeginTxn:
      return "begin-txn";
    case MsgType::kBeginTxnReply:
      return "begin-txn-reply";
    case MsgType::kCommitReq:
      return "commit-req";
    case MsgType::kCommitReqReply:
      return "commit-req-reply";
    case MsgType::kAbortReq:
      return "abort-req";
    case MsgType::kShardPull:
      return "shard-pull";
    case MsgType::kLeaseGrant:
      return "lease-grant";
    case MsgType::kBackupRead:
      return "backup-read";
    case MsgType::kBackupReadReply:
      return "backup-read-reply";
  }
  return "?";
}

void BufferBatchMsg::Encode(wire::Writer& w) const {
  w.U64(group);
  viewid.Encode(w);
  w.U32(from);
  const bool dict =
      mode == CompressionMode::kDict && codec != nullptr && !events.empty();
  w.U8(dict ? 1 : 0);
  if (dict) {
    codec->EncodeBody(w, events);
  } else {
    w.Vector(events, [&](const EventRecord& e) { e.Encode(w); });
  }
}

BufferBatchMsg BufferBatchMsg::Decode(wire::Reader& r, BatchDecoder* dec) {
  BufferBatchMsg m;
  m.group = r.U64();
  m.viewid = ViewId::Decode(r);
  m.from = r.U32();
  const std::uint8_t mode = r.U8();
  if (mode > 1) r.MarkBad();
  if (!r.ok()) return m;
  if (mode == 0) {
    m.events = r.Vector<EventRecord>([&] { return EventRecord::Decode(r); });
    return m;
  }
  m.mode = CompressionMode::kDict;
  if (!dec) {
    r.MarkBad();
    return m;
  }
  switch (dec->DecodeBody(r, m.viewid, m.from, m.events, m.last_ts)) {
    case BatchOutcome::kOk:
      break;
    case BatchOutcome::kStale:
      m.stale = true;
      break;
    case BatchOutcome::kUnsynced:
      m.unsynced = true;
      m.reset_needed = dec->needs_reset();
      break;
    case BatchOutcome::kBad:
      break;  // reader already marked bad
  }
  return m;
}

}  // namespace vsr::vr
