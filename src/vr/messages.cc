#include "vr/messages.h"

namespace vsr::vr {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kInvite:
      return "invite";
    case MsgType::kAccept:
      return "accept";
    case MsgType::kInitView:
      return "init-view";
    case MsgType::kBufferBatch:
      return "buffer-batch";
    case MsgType::kBufferAck:
      return "buffer-ack";
    case MsgType::kCall:
      return "call";
    case MsgType::kReply:
      return "reply";
    case MsgType::kPrepare:
      return "prepare";
    case MsgType::kPrepareReply:
      return "prepare-reply";
    case MsgType::kCommit:
      return "commit";
    case MsgType::kCommitDone:
      return "commit-done";
    case MsgType::kAbort:
      return "abort";
    case MsgType::kAbortSub:
      return "abort-sub";
    case MsgType::kQuery:
      return "query";
    case MsgType::kQueryReply:
      return "query-reply";
    case MsgType::kProbe:
      return "probe";
    case MsgType::kProbeReply:
      return "probe-reply";
    case MsgType::kBeginTxn:
      return "begin-txn";
    case MsgType::kBeginTxnReply:
      return "begin-txn-reply";
    case MsgType::kCommitReq:
      return "commit-req";
    case MsgType::kCommitReqReply:
      return "commit-req-reply";
    case MsgType::kAbortReq:
      return "abort-req";
  }
  return "?";
}

}  // namespace vsr::vr
