#include "client/debug.h"

#include <cstdio>

namespace vsr::client {

std::string CohortDebugString(const core::Cohort& cohort) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "cohort %u: %-12s view %-8s primary=%u%s%s objs=%zu locks=%zu "
      "tentatives=%zu txns(c/a/u)=%llu/%llu/%llu vc=%llu",
      cohort.mid(), core::StatusName(cohort.status()),
      cohort.cur_viewid().ToString().c_str(), cohort.cur_view().primary,
      cohort.up_to_date() ? " utd" : " STALE",
      cohort.IsActivePrimary() ? " *PRIMARY*" : "",
      cohort.objects().object_count(), cohort.objects().lock_count(),
      cohort.objects().tentative_count(),
      static_cast<unsigned long long>(cohort.stats().txns_committed),
      static_cast<unsigned long long>(cohort.stats().txns_aborted),
      static_cast<unsigned long long>(cohort.stats().txns_unknown),
      static_cast<unsigned long long>(cohort.stats().view_changes_completed));
  return buf;
}

std::string GroupDebugString(Cluster& cluster, vr::GroupId group) {
  std::string out =
      "group " + std::to_string(group) + " (" + cluster.GroupName(group) +
      "):\n";
  for (const core::Cohort* c : cluster.Cohorts(group)) {
    out += "  " + CohortDebugString(*c) + "\n";
  }
  return out;
}

}  // namespace vsr::client
