#include "client/cluster.h"

#include <cassert>
#include <stdexcept>

namespace vsr::client {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      sim_(options.seed),
      net_(sim_, options.net),
      stable_(sim_, options.storage) {}

GroupId Cluster::AddGroup(const std::string& name, std::size_t replicas,
                          const CohortOptions* override_options) {
  assert(replicas >= 1);
  const GroupId g = next_group_++;
  std::vector<Mid> config;
  config.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) config.push_back(next_mid_++);
  directory_.RegisterGroup(g, config);

  const CohortOptions& opts =
      override_options != nullptr ? *override_options : options_.cohort;
  auto& cohorts = groups_[g];
  for (Mid mid : config) {
    cohorts.push_back(std::make_unique<Cohort>(sim_, net_, directory_,
                                               stable_, g, mid, config, opts));
  }
  group_names_[name] = g;
  group_name_of_[g] = name;
  return g;
}

GroupId Cluster::GroupByName(const std::string& name) const {
  auto it = group_names_.find(name);
  if (it == group_names_.end()) throw std::out_of_range("unknown group " + name);
  return it->second;
}

const std::string& Cluster::GroupName(GroupId g) const {
  return group_name_of_.at(g);
}

std::vector<Cohort*> Cluster::Cohorts(GroupId g) {
  std::vector<Cohort*> out;
  for (auto& c : groups_.at(g)) out.push_back(c.get());
  return out;
}

Cohort& Cluster::CohortAt(GroupId g, std::size_t idx) {
  return *groups_.at(g).at(idx);
}

Cohort* Cluster::AnyPrimary(GroupId g) {
  for (auto& c : groups_.at(g)) {
    if (c->IsActivePrimary()) return c.get();
  }
  return nullptr;
}

void Cluster::RegisterProc(GroupId g, const std::string& name,
                           core::ProcFn fn) {
  for (auto& c : groups_.at(g)) c->RegisterProc(name, fn);
}

void Cluster::Start() {
  for (auto& [g, cohorts] : groups_) Start(g);
}

void Cluster::Start(GroupId g) {
  for (auto& c : groups_.at(g)) {
    if (c->status() == core::Status::kCrashed) c->Start();
  }
  if (std::find(started_.begin(), started_.end(), g) == started_.end()) {
    started_.push_back(g);
  }
}

bool Cluster::RunUntilStable(sim::Duration deadline_from_now) {
  const sim::Time deadline = sim_.Now() + deadline_from_now;
  while (sim_.Now() < deadline) {
    bool all_stable = true;
    for (GroupId g : started_) {
      Cohort* primary = AnyPrimary(g);
      if (primary == nullptr) {
        all_stable = false;
        break;
      }
      // The view is only useful once a majority is active in it (so forces
      // can complete): count active members sharing the primary's view.
      std::size_t in_view = 0;
      for (auto& c : groups_.at(g)) {
        if (c->status() == core::Status::kActive &&
            c->cur_viewid() == primary->cur_viewid()) {
          ++in_view;
        }
      }
      if (in_view < vr::MajorityOf(groups_.at(g).size())) {
        all_stable = false;
        break;
      }
    }
    if (all_stable) return true;
    // Advance in small increments so we notice stability promptly.
    sim_.scheduler().RunUntil(sim_.Now() + 10 * sim::kMillisecond);
  }
  return false;
}

std::uint64_t Cluster::TotalCommitted(GroupId g) {
  std::uint64_t n = 0;
  for (auto& c : groups_.at(g)) n += c->stats().txns_committed;
  return n;
}

std::uint64_t Cluster::TotalAborted(GroupId g) {
  std::uint64_t n = 0;
  for (auto& c : groups_.at(g)) n += c->stats().txns_aborted;
  return n;
}

std::uint64_t Cluster::TotalCommittedAll() {
  std::uint64_t n = 0;
  for (auto& [g, cohorts] : groups_) n += TotalCommitted(g);
  return n;
}

std::uint64_t Cluster::TotalAbortedAll() {
  std::uint64_t n = 0;
  for (auto& [g, cohorts] : groups_) n += TotalAborted(g);
  return n;
}

std::vector<GroupId> Cluster::AllGroups() const {
  std::vector<GroupId> out;
  out.reserve(groups_.size());
  for (const auto& [g, cohorts] : groups_) out.push_back(g);
  return out;
}

}  // namespace vsr::client
