// Human-readable state dumps for debugging, examples, and operational
// tooling: one line per cohort, one block per group.
#pragma once

#include <string>

#include "client/cluster.h"
#include "core/cohort.h"

namespace vsr::client {

// "cohort 3: active view v4.2 primary=2 utd applied=17 objs=5 locks=1"
std::string CohortDebugString(const core::Cohort& cohort);

// Multi-line description of one group's cohorts.
std::string GroupDebugString(Cluster& cluster, vr::GroupId group);

}  // namespace vsr::client
