#include "client/unreplicated_client.h"

#include "core/cohort.h"  // core::TxnError

namespace vsr::client {

UnreplicatedClient::UnreplicatedClient(sim::Simulation& simulation,
                                       net::Network& network,
                                       core::Directory& directory, Mid self,
                                       GroupId coordinator_group,
                                       core::CohortOptions options)
    : sim_(simulation),
      net_(network),
      directory_(directory),
      self_(self),
      coordinator_group_(coordinator_group),
      options_(options),
      reply_waiters_(simulation.scheduler()),
      probe_waiters_(simulation.scheduler()),
      begin_waiters_(simulation.scheduler()),
      commit_waiters_(simulation.scheduler()),
      query_waiters_(simulation.scheduler()),
      tasks_(simulation.scheduler()) {
  net_.Register(self_, this);
}

UnreplicatedClient::~UnreplicatedClient() { tasks_.DestroyAll(); }

void UnreplicatedClient::OnFrame(const net::Frame& frame) {
  wire::Reader r(frame.payload);
  switch (static_cast<vr::MsgType>(frame.type)) {
    case vr::MsgType::kReply: {
      auto m = vr::ReplyMsg::Decode(r);
      if (r.ok()) reply_waiters_.Fulfill(m.call_id, std::move(m));
      break;
    }
    case vr::MsgType::kProbeReply: {
      auto m = vr::ProbeReplyMsg::Decode(r);
      if (r.ok()) probe_waiters_.Fulfill(m.req_id, std::move(m));
      break;
    }
    case vr::MsgType::kBeginTxnReply: {
      auto m = vr::BeginTxnReplyMsg::Decode(r);
      if (r.ok()) begin_waiters_.Fulfill(m.req_id, std::move(m));
      break;
    }
    case vr::MsgType::kCommitReqReply: {
      auto m = vr::CommitReqReplyMsg::Decode(r);
      if (r.ok()) commit_waiters_.Fulfill(m.req_id, std::move(m));
      break;
    }
    case vr::MsgType::kQueryReply: {
      auto m = vr::QueryReplyMsg::Decode(r);
      if (!r.ok()) break;
      auto it = query_corr_.find(m.aid);
      if (it != query_corr_.end()) query_waiters_.Fulfill(it->second, std::move(m));
      break;
    }
    default:
      break;
  }
}

void UnreplicatedClient::Spawn(
    std::function<sim::Task<bool>(ClientTxn&)> body,
    std::function<void(TxnOutcome)> on_done) {
  tasks_.Spawn(TxnDriver(std::move(body), std::move(on_done)));
}

sim::Task<void> UnreplicatedClient::TxnDriver(
    std::function<sim::Task<bool>(ClientTxn&)> body,
    std::function<void(TxnOutcome)> on_done) {
  auto aid = co_await BeginTxn();
  if (!aid) {
    ++stats_.txns_aborted;
    if (on_done) on_done(TxnOutcome::kAborted);
    co_return;
  }
  ClientTxn txn(*this, *aid);
  bool want_commit = false;
  try {
    want_commit = co_await body(txn);
  } catch (const std::exception&) {
    want_commit = false;
  }

  TxnOutcome outcome;
  if (!want_commit || txn.doomed_) {
    vr::AbortReqMsg m;
    m.group = coordinator_group_;
    m.aid = *aid;
    m.pset = txn.pset_;
    if (auto entry = cache_.find(coordinator_group_); entry != cache_.end()) {
      SendMsg(entry->second.view.primary, m);  // best effort; sweep covers loss
    }
    outcome = TxnOutcome::kAborted;
  } else {
    outcome = co_await CommitTxn(*aid, txn.pset_);
  }
  switch (outcome) {
    case TxnOutcome::kCommitted:
      ++stats_.txns_committed;
      break;
    case TxnOutcome::kAborted:
      ++stats_.txns_aborted;
      break;
    default:
      ++stats_.txns_unknown;
      break;
  }
  if (on_done) on_done(outcome);
}

sim::Task<std::optional<Aid>> UnreplicatedClient::BeginTxn() {
  for (int attempt = 0; attempt < options_.call_attempts; ++attempt) {
    auto entry = co_await CacheLookup(coordinator_group_);
    if (!entry) co_return std::nullopt;
    vr::BeginTxnMsg m;
    m.group = coordinator_group_;
    m.viewid = entry->viewid;
    m.req_id = NextCorrId();
    m.reply_to = self_;
    SendMsg(entry->view.primary, m);
    auto r = co_await begin_waiters_.Await(m.req_id, options_.call_timeout);
    if (!r) {
      cache_.erase(coordinator_group_);
      continue;
    }
    if (r->status == vr::ReplyStatus::kOk) co_return r->aid;
    if (r->view_known) {
      cache_[coordinator_group_] = CacheEntry{r->new_viewid, r->new_view};
    } else {
      cache_.erase(coordinator_group_);
    }
    // Beginning a transaction is idempotent from the client's point of view
    // (an orphaned begin is swept), so retrying is always safe.
  }
  co_return std::nullopt;
}

sim::Task<TxnOutcome> UnreplicatedClient::CommitTxn(Aid aid,
                                                    const Pset& pset) {
  for (int attempt = 0; attempt < options_.commit_attempts; ++attempt) {
    auto entry = co_await CacheLookup(coordinator_group_);
    if (!entry) break;
    vr::CommitReqMsg m;
    m.group = coordinator_group_;
    m.viewid = entry->viewid;
    m.req_id = NextCorrId();
    m.aid = aid;
    m.pset = pset;
    m.reply_to = self_;
    SendMsg(entry->view.primary, m);
    // The coordinator-server runs a full 2PC before answering.
    auto r = co_await commit_waiters_.Await(
        m.req_id, options_.commit_ack_timeout +
                      static_cast<sim::Duration>(options_.prepare_attempts) *
                          options_.prepare_timeout +
                      options_.buffer.force_timeout);
    if (!r) {
      cache_.erase(coordinator_group_);
      continue;  // retransmission is safe: the server answers from its
                 // outcome table once decided
    }
    co_return r->outcome;
  }
  // Could not learn the decision; it may still have committed. Fall back to
  // a query (§3.4).
  co_return co_await DoQueryOutcome(aid);
}

void UnreplicatedClient::QueryOutcome(
    Aid aid, std::function<void(TxnOutcome)> on_done) {
  tasks_.Spawn([](UnreplicatedClient* self, Aid a,
                  std::function<void(TxnOutcome)> done) -> sim::Task<void> {
    TxnOutcome o = co_await self->DoQueryOutcome(a);
    if (done) done(o);
  }(this, aid, std::move(on_done)));
}

sim::Task<TxnOutcome> UnreplicatedClient::DoQueryOutcome(Aid aid) {
  const std::vector<Mid>* config = directory_.Lookup(aid.coordinator_group);
  if (config == nullptr) co_return TxnOutcome::kUnknown;
  for (int round = 0; round < options_.probe_rounds; ++round) {
    for (Mid target : *config) {
      const std::uint64_t corr = NextCorrId();
      query_corr_[aid] = corr;
      vr::QueryMsg q;
      q.aid = aid;
      q.reply_to = self_;
      SendMsg(target, q);
      auto r = co_await query_waiters_.Await(corr, options_.probe_timeout);
      if (auto it = query_corr_.find(aid);
          it != query_corr_.end() && it->second == corr) {
        query_corr_.erase(it);
      }
      if (r && (r->outcome == TxnOutcome::kCommitted ||
                r->outcome == TxnOutcome::kAborted)) {
        co_return r->outcome;
      }
    }
  }
  co_return TxnOutcome::kUnknown;
}

sim::Task<std::vector<std::uint8_t>> ClientTxn::Call(
    GroupId group, std::string proc, std::vector<std::uint8_t> args) {
  return client_->DoCall(*this, group, std::move(proc), std::move(args));
}

sim::Task<std::vector<std::uint8_t>> UnreplicatedClient::DoCall(
    ClientTxn& txn, GroupId group, std::string proc,
    std::vector<std::uint8_t> args) {
  if (txn.doomed_) throw core::TxnError("transaction doomed");
  const std::uint64_t call_seq = NextCallSeq();
  bool ambiguous = false;
  int wrong_view_budget = options_.call_attempts;
  for (int attempt = 0; attempt < options_.call_attempts;) {
    auto entry = co_await CacheLookup(group);
    if (!entry) break;
    vr::CallMsg m;
    m.group = group;
    m.viewid = entry->viewid;
    m.call_id = NextCorrId();
    m.call_seq = call_seq;
    m.reply_to = self_;
    m.sub_aid = vr::SubAid{txn.aid_, 0};
    m.proc = proc;
    m.args = args;
    SendMsg(entry->view.primary, m);
    auto r = co_await reply_waiters_.Await(m.call_id, options_.call_timeout);
    if (!r) {
      ambiguous = true;
      ++attempt;
      continue;
    }
    if (r->status == vr::ReplyStatus::kOk) {
      vr::MergePset(txn.pset_, r->pset);
      ++stats_.calls_ok;
      co_return std::move(r->result);
    }
    if (r->status == vr::ReplyStatus::kFailed) {
      ++stats_.calls_failed;
      txn.doomed_ = true;
      throw core::TxnError(
          std::string(r->result.begin(), r->result.end()));
    }
    // Wrong view.
    if (r->view_known) {
      cache_[group] = CacheEntry{r->new_viewid, r->new_view};
    } else {
      cache_.erase(group);
    }
    if (!ambiguous && wrong_view_budget-- > 0) continue;
    break;  // possibly executed: abort (no subactions at this client)
  }
  ++stats_.calls_failed;
  txn.doomed_ = true;
  throw core::TxnError("no reply from group " + std::to_string(group));
}

sim::Task<std::optional<UnreplicatedClient::CacheEntry>>
UnreplicatedClient::CacheLookup(GroupId g) {
  if (auto it = cache_.find(g); it != cache_.end()) co_return it->second;
  const std::vector<Mid>* config = directory_.Lookup(g);
  if (config == nullptr) co_return std::nullopt;
  for (int round = 0; round < options_.probe_rounds; ++round) {
    for (Mid target : *config) {
      if (auto it = cache_.find(g); it != cache_.end()) co_return it->second;
      vr::ProbeMsg probe;
      probe.group = g;
      probe.req_id = NextCorrId();
      probe.reply_to = self_;
      SendMsg(target, probe);
      auto r = co_await probe_waiters_.Await(probe.req_id,
                                             options_.probe_timeout);
      if (r && r->known && r->active) {
        cache_[g] = CacheEntry{r->viewid, r->view};
        co_return cache_[g];
      }
    }
  }
  co_return std::nullopt;
}

}  // namespace vsr::client
