// Live shard rebalancing orchestrator (DESIGN.md §11.3).
//
// Moves one key range between groups under traffic, driving the placement
// directory and the cohorts' pull/drop primitives through four phases:
//
//   1. BeginMove   — directory marks [lo, hi) kMigrating; the old owner
//                    keeps serving (this is what makes the move "live").
//   2. bulk pull   — the new owner's primary pulls the committed image of
//                    the range over the §9 snapshot machinery and forces a
//                    kShardInstall record to a sub-majority.
//   3. BeginHandoff— the old owner's procs reject range traffic; the
//                    rebalancer polls its primary until no in-flight
//                    transaction touches the range (strict 2PL: quiescent
//                    means every touching transaction committed/aborted),
//                    then takes a settle pull — the final delta, which for
//                    an idempotent install is just a re-pull of the range.
//   4. CommitMove  — routing flips atomically (one epoch bump); the old
//                    owner garbage-collects with DropShard.
//
// The orchestrator is a timer-driven state machine over the cluster: every
// step re-resolves the relevant primary, so crashes and view changes during
// a move only delay it.
#pragma once

#include <functional>
#include <string>

#include "client/cluster.h"

namespace vsr::client {

struct RebalanceOptions {
  // Drain-poll / retry cadence.
  sim::Duration poll_interval = 20 * sim::kMillisecond;
  // Give up and CancelMove if a move has not committed by then (0 = never).
  sim::Duration move_deadline = 0;
};

class ShardRebalancer {
 public:
  ShardRebalancer(Cluster& cluster, RebalanceOptions options = {})
      : cluster_(cluster), options_(options) {}
  ~ShardRebalancer() { CancelTimer(); }
  ShardRebalancer(const ShardRebalancer&) = delete;
  ShardRebalancer& operator=(const ShardRebalancer&) = delete;

  // Starts moving [lo, hi) to `to`. One move at a time; `done(ok)` fires
  // after CommitMove + DropShard (ok) or after CancelMove (deadline).
  void Move(std::string lo, std::string hi, vr::GroupId to,
            std::function<void(bool)> done = nullptr);

  bool active() const { return phase_ != Phase::kIdle; }

  struct Stats {
    std::uint64_t moves_started = 0;
    std::uint64_t moves_completed = 0;
    std::uint64_t moves_cancelled = 0;
    std::uint64_t bulk_pulls = 0;    // pull attempts during phase 2
    std::uint64_t settle_pulls = 0;  // pull attempts during phase 3
    std::uint64_t drain_polls = 0;
    // Simulated time from BeginHandoff to CommitMove of the last move —
    // the window in which the range is unavailable.
    sim::Duration last_handoff_window = 0;
    sim::Duration last_move_duration = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class Phase { kIdle, kBulk, kDrain, kSettle };

  void StartBulkPull();
  void PollDrain();
  void StartSettlePull();
  void Commit();
  void Finish(bool ok);
  void ArmTimer(std::function<void()> fn);
  void CancelTimer();
  bool DeadlineExceeded() const;

  Cluster& cluster_;
  RebalanceOptions options_;

  Phase phase_ = Phase::kIdle;
  std::string lo_;
  std::string hi_;
  vr::GroupId from_ = 0;
  vr::GroupId to_ = 0;
  std::function<void(bool)> done_;
  std::uint64_t move_id_ = 0;  // guards stale pull completions
  sim::Time move_began_ = 0;
  sim::Time handoff_began_ = 0;
  sim::TimerId timer_ = sim::kNoTimer;
  Stats stats_;
};

}  // namespace vsr::client
