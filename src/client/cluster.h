// Cluster: the one-stop harness that wires a simulated world together —
// scheduler, network, stable stores, directory, module groups — for tests,
// examples, and benchmarks.
//
// Typical use:
//   client::Cluster cluster({.seed = 42});
//   auto bank = cluster.AddGroup("bank", 3);
//   cluster.RegisterProc(bank, "deposit", ...);
//   cluster.Start();
//   cluster.RunUntilStable();
//   cluster.AnyPrimary(bank)->SpawnTransaction(...);
//   cluster.RunFor(1 * sim::kSecond);
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cohort.h"
#include "core/directory.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "storage/stable_store.h"

namespace vsr::client {

using core::Cohort;
using core::CohortOptions;
using vr::GroupId;
using vr::Mid;

struct ClusterOptions {
  std::uint64_t seed = 1;
  net::NetworkOptions net;
  storage::StableStoreOptions storage;
  CohortOptions cohort;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return net_; }
  core::Directory& directory() { return directory_; }
  storage::StableStore& stable() { return stable_; }

  // Creates a replication group of `replicas` cohorts. Node ids (mids) are
  // assigned sequentially across the cluster. Cohorts are created but not
  // started; call Start() (or Start(group)) afterwards.
  GroupId AddGroup(const std::string& name, std::size_t replicas,
                   const CohortOptions* override_options = nullptr);

  GroupId GroupByName(const std::string& name) const;
  const std::string& GroupName(GroupId g) const;

  std::vector<Cohort*> Cohorts(GroupId g);
  Cohort& CohortAt(GroupId g, std::size_t idx);

  // The cohort currently acting as active primary, or nullptr.
  Cohort* AnyPrimary(GroupId g);

  // Registers a procedure on every cohort of the group (all replicas must
  // have identical code — they are copies of one module).
  void RegisterProc(GroupId g, const std::string& name, core::ProcFn fn);

  // Starts all (or one group's) cohorts.
  void Start();
  void Start(GroupId g);

  // -- running -----------------------------------------------------------

  void RunFor(sim::Duration d) { sim_.scheduler().RunUntil(sim_.Now() + d); }

  // Runs until every started group has an active primary whose view the
  // majority shares, or until `deadline_from_now`. Returns success.
  bool RunUntilStable(sim::Duration deadline_from_now = 10 * sim::kSecond);

  // -- fault injection ---------------------------------------------------

  void Crash(GroupId g, std::size_t idx) { CohortAt(g, idx).Crash(); }
  void Recover(GroupId g, std::size_t idx) { CohortAt(g, idx).Recover(); }
  // Recovery with the durable event log lost too (disk replaced); the
  // cohort comes back amnesiac even when options.event_log is enabled.
  void RecoverDiskless(GroupId g, std::size_t idx) {
    CohortAt(g, idx).RecoverDiskless();
  }

  // Fresh mid for non-cohort endpoints (unreplicated clients).
  Mid AllocateMid() { return next_mid_++; }

  // Aggregates across one group.
  std::uint64_t TotalCommitted(GroupId g);
  std::uint64_t TotalAborted(GroupId g);

  // Cluster-wide aggregates over every group ever added — a sharded
  // deployment coordinates transactions from several groups, so per-group
  // totals undercount.
  std::uint64_t TotalCommittedAll();
  std::uint64_t TotalAbortedAll();

  // All groups, in creation order.
  std::vector<GroupId> AllGroups() const;

 private:
  ClusterOptions options_;
  sim::Simulation sim_;
  net::Network net_;
  core::Directory directory_;
  storage::StableStore stable_;

  Mid next_mid_ = 1;
  GroupId next_group_ = 1;
  std::map<std::string, GroupId> group_names_;
  std::map<GroupId, std::string> group_name_of_;
  std::map<GroupId, std::vector<std::unique_ptr<Cohort>>> groups_;
  std::vector<GroupId> started_;
};

}  // namespace vsr::client
