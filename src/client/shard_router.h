// Client-side shard routing (DESIGN.md §11.2).
//
// A ShardRouter holds a cached copy of the directory's placement table —
// {epoch, ranges} — and maps object keys to the group that should execute
// calls touching them. The cache is exactly the paper's primary-cache idiom
// one level up: use the cached answer optimistically, and when a server
// rejects a call with a wrong-shard error (the ownership check in the
// workload's procs), Refresh() against the directory and retry.
//
// During a live rebalance the authoritative table changes epoch at every
// phase transition; a router only observes those epochs when a rejection
// forces a refresh, which is what keeps routing cheap in steady state.
#pragma once

#include <string>
#include <vector>

#include "core/directory.h"
#include "vr/types.h"

namespace vsr::client {

class ShardRouter {
 public:
  explicit ShardRouter(const core::Directory& directory)
      : directory_(directory) {
    Refresh();
  }

  // The group a call touching `key` should be sent to. During a migration
  // the OLD owner keeps serving (state kMigrating); in the handoff window
  // the old owner rejects, so route to the new owner — its first serve
  // happens at CommitMove, and calls racing the flip simply retry.
  vr::GroupId Route(const std::string& key) const {
    for (const core::ShardRange& r : ranges_) {
      if (!r.Contains(key)) continue;
      if (r.state == core::ShardState::kHandoff) return r.moving_to;
      return r.owner;
    }
    return 0;  // no placement covers the key
  }

  // Re-reads the authoritative table. Returns true if the epoch advanced
  // (i.e. the cached copy was actually stale).
  bool Refresh() {
    const std::uint64_t e = directory_.placement_epoch();
    if (e == epoch_ && !ranges_.empty()) return false;
    const bool advanced = e != epoch_;
    epoch_ = e;
    ranges_ = directory_.ranges();
    return advanced;
  }

  std::uint64_t epoch() const { return epoch_; }
  const std::vector<core::ShardRange>& ranges() const { return ranges_; }

  std::uint64_t refreshes() const { return refreshes_; }

  // Refresh() + bookkeeping, for the workload retry path.
  void NoteWrongShard() {
    ++refreshes_;
    Refresh();
  }

 private:
  const core::Directory& directory_;
  std::uint64_t epoch_ = 0;
  std::vector<core::ShardRange> ranges_;
  std::uint64_t refreshes_ = 0;
};

}  // namespace vsr::client
