// Client-side consistent reads at backups (DESIGN.md §14).
//
// A ReadClient fans single-object committed reads out across ALL members of
// a group — primary and backups alike — instead of funnelling them through
// the primary the way the transactional call path must. A backup answers
// only while it holds a viewstamp lease from the current primary; otherwise
// it bounces the read with a wrong-lease hint, mirroring the wrong-shard
// bounce in client/shard_router.h: use the cached answer optimistically,
// and let the rejection teach the client where to go.
//
// Routing policy:
//   * round-robin across the group's configuration for load spreading;
//   * a member that bounced is benched for one lease duration (it has no
//     lease now and will not acquire one faster than the grant traffic
//     runs), and the read retries at the hinted primary — the sticky
//     fallback that always makes progress while the group has one;
//   * every successful read folds served_vs into the per-group session
//     horizon, and every request carries that horizon, so a session's reads
//     are monotone across servers AND across view changes: a backup whose
//     applied state or lease watermark trails the horizon refuses rather
//     than serving a value older than one this client already saw.
//
// Host-agnostic on purpose: constructed over host::Host + net::Transport,
// so the same code drives the simulator and the socket host.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/directory.h"
#include "core/options.h"
#include "core/wait_table.h"
#include "host/host.h"
#include "host/task.h"
#include "net/transport.h"
#include "vr/messages.h"
#include "vr/types.h"

namespace vsr::client {

struct ReadClientStats {
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_not_found = 0;
  // Wrong-lease rejections observed (each costs one extra round trip).
  std::uint64_t bounces = 0;
  // Reads that fell back to the hinted primary after a bounce.
  std::uint64_t primary_fallbacks = 0;
  std::uint64_t read_timeouts = 0;
  // Reads that exhausted every attempt without an answer.
  std::uint64_t reads_failed = 0;
};

class ReadClient : public net::FrameHandler {
 public:
  // `self` must be a node id the transport serves and no other handler owns.
  ReadClient(host::Host& hst, net::Transport& transport,
             const core::Directory& directory, vr::Mid self,
             core::CohortOptions options);
  ~ReadClient() override;

  // One committed read. Resolves to the value, or nullopt if the object does
  // not exist OR no server answered within the attempt budget — callers that
  // must distinguish check stats().reads_failed. Safe to have many in flight.
  host::Task<std::optional<std::string>> Read(vr::GroupId group,
                                              std::string uid);

  // The session horizon for a group: the highest viewstamp any read in this
  // session was served at. Exposed for tests asserting monotonicity.
  vr::Viewstamp horizon(vr::GroupId group) const {
    auto it = horizon_.find(group);
    return it == horizon_.end() ? vr::Viewstamp{} : it->second;
  }

  const ReadClientStats& stats() const { return stats_; }

  // net::FrameHandler
  void OnFrame(const net::Frame& frame) override;

 private:
  template <typename M>
  void SendMsg(vr::Mid to, const M& m) {
    transport_.Send(self_, to, static_cast<std::uint16_t>(M::kType),
                    vr::EncodeMsg(m));
  }

  // Next round-robin target for the group, skipping benched members. Falls
  // back to the first member when everyone is benched (better to ask a
  // probably-leaseless backup than nobody).
  vr::Mid PickTarget(vr::GroupId group, const std::vector<vr::Mid>& config);

  host::Host& host_;
  net::Transport& transport_;
  const core::Directory& directory_;
  const vr::Mid self_;
  const core::CohortOptions options_;

  std::uint64_t next_corr_ = 1;
  std::map<vr::GroupId, std::size_t> cursor_;
  std::map<vr::GroupId, vr::Viewstamp> horizon_;
  // Members that bounced a read, benched until the stored time.
  std::map<vr::Mid, host::Time> benched_until_;
  ReadClientStats stats_;

  core::WaitTable<vr::BackupReadReplyMsg> read_waiters_;
};

}  // namespace vsr::client
