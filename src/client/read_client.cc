#include "client/read_client.h"

#include <utility>

namespace vsr::client {

ReadClient::ReadClient(host::Host& hst, net::Transport& transport,
                       const core::Directory& directory, vr::Mid self,
                       core::CohortOptions options)
    : host_(hst),
      transport_(transport),
      directory_(directory),
      self_(self),
      options_(std::move(options)),
      read_waiters_(hst.timers()) {
  transport_.Register(self_, this);
}

ReadClient::~ReadClient() { transport_.Unregister(self_); }

void ReadClient::OnFrame(const net::Frame& frame) {
  if (static_cast<vr::MsgType>(frame.type) != vr::MsgType::kBackupReadReply) {
    return;
  }
  wire::Reader r(frame.payload);
  auto m = vr::BackupReadReplyMsg::Decode(r);
  if (r.ok()) read_waiters_.Fulfill(m.corr, std::move(m));
}

vr::Mid ReadClient::PickTarget(vr::GroupId group,
                               const std::vector<vr::Mid>& config) {
  const host::Time now = host_.Now();
  std::size_t& cur = cursor_[group];
  for (std::size_t i = 0; i < config.size(); ++i) {
    const vr::Mid candidate = config[cur % config.size()];
    cur = (cur + 1) % config.size();
    auto it = benched_until_.find(candidate);
    if (it == benched_until_.end() || it->second <= now) return candidate;
  }
  return config.front();
}

host::Task<std::optional<std::string>> ReadClient::Read(vr::GroupId group,
                                                        std::string uid) {
  const std::vector<vr::Mid>* config = directory_.Lookup(group);
  if (config == nullptr || config->empty()) {
    ++stats_.reads_failed;
    co_return std::nullopt;
  }
  // One "attempt" is a round trip (or its timeout); a bounce-then-primary
  // pair burns two. call_attempts bounds the total so a partitioned group
  // fails the read instead of spinning.
  vr::Mid target = PickTarget(group, *config);
  bool via_hint = false;
  for (int attempt = 0; attempt < options_.call_attempts; ++attempt) {
    vr::BackupReadMsg m;
    m.group = group;
    m.uid = uid;
    m.horizon = horizon_[group];
    m.corr = next_corr_++;
    m.reply_to = self_;
    SendMsg(target, m);
    auto r = co_await read_waiters_.Await(m.corr, options_.call_timeout);
    if (!r) {
      ++stats_.read_timeouts;
      target = PickTarget(group, *config);
      via_hint = false;
      continue;
    }
    if (r->status == vr::ReadStatus::kWrongLease ||
        r->status == vr::ReadStatus::kTooNew) {
      ++stats_.bounces;
      if (r->status == vr::ReadStatus::kWrongLease) {
        // The member has no usable lease; it will not get one faster than
        // the grant traffic runs, so bench it for a lease duration instead
        // of re-bouncing off it round after round. A kTooNew member keeps
        // its place: its stable prefix catches up with the next renewal.
        benched_until_[target] = host_.Now() + options_.read_lease_duration;
      }
      if (r->primary_hint != 0 && r->primary_hint != target) {
        target = r->primary_hint;
        via_hint = true;
        ++stats_.primary_fallbacks;
      } else {
        target = PickTarget(group, *config);
        via_hint = false;
      }
      continue;
    }
    // Served (found or authoritatively absent): advance the session horizon
    // so later reads never observe an older state.
    auto& h = horizon_[group];
    h = std::max(h, r->served_vs);
    if (via_hint) benched_until_.clear();  // new primary answered; re-probe
    if (r->status == vr::ReadStatus::kNotFound) {
      ++stats_.reads_not_found;
      co_return std::nullopt;
    }
    ++stats_.reads_ok;
    co_return std::string(r->value.begin(), r->value.end());
  }
  ++stats_.reads_failed;
  co_return std::nullopt;
}

}  // namespace vsr::client
