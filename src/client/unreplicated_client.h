// An unreplicated client using a replicated coordinator-server (§3.5).
//
// "If the client is not replicated, it is still desirable for the
//  coordinator to be highly available, since this can reduce the 'window of
//  vulnerability' in two-phase commit. ... The client communicates with such
//  a server when it starts a transaction, and when it commits or aborts the
//  transaction. The coordinator-server carries out two-phase commit as
//  described above on the client's behalf."
//
// The client begins a transaction at the coordinator-server's primary
// (obtaining an aid whose groupid points at that group), makes its remote
// calls directly to server groups while accumulating the pset, and finally
// ships the pset back in a commit-request; the coordinator-server runs 2PC
// and answers the outcome. A client that vanishes mid-transaction is aborted
// unilaterally by the coordinator-server's sweep.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/directory.h"
#include "core/options.h"
#include "core/wait_table.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "vr/messages.h"
#include "vr/types.h"

namespace vsr::client {

using vr::Aid;
using vr::GroupId;
using vr::Mid;
using vr::Pset;
using vr::TxnOutcome;

class UnreplicatedClient;

// Handle passed to a client transaction body.
class ClientTxn {
 public:
  Aid aid() const { return aid_; }
  bool doomed() const { return doomed_; }

  // Remote call; merges the reply pset. Throws core::TxnError on failure or
  // no reply (the §3.5 client has no subactions — uncertainty aborts).
  sim::Task<std::vector<std::uint8_t>> Call(GroupId group, std::string proc,
                                            std::vector<std::uint8_t> args);
  sim::Task<std::vector<std::uint8_t>> Call(GroupId group, std::string proc,
                                            const std::string& args) {
    return Call(group, std::move(proc),
                std::vector<std::uint8_t>(args.begin(), args.end()));
  }

 private:
  friend class UnreplicatedClient;
  ClientTxn(UnreplicatedClient& c, Aid aid) : client_(&c), aid_(aid) {}
  UnreplicatedClient* client_;
  Aid aid_;
  Pset pset_;
  bool doomed_ = false;
};

struct ClientStats {
  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  std::uint64_t txns_unknown = 0;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_failed = 0;
};

class UnreplicatedClient : public net::FrameHandler {
 public:
  UnreplicatedClient(sim::Simulation& simulation, net::Network& network,
                     core::Directory& directory, Mid self,
                     GroupId coordinator_group, core::CohortOptions options);
  ~UnreplicatedClient() override;

  // Runs `body`; on true, commits via the coordinator-server; on false or
  // throw, aborts. `on_done` gets the final outcome.
  void Spawn(std::function<sim::Task<bool>(ClientTxn&)> body,
             std::function<void(TxnOutcome)> on_done = nullptr);

  // Queries the coordinator-server for a transaction's outcome (recovery
  // after an unknown result). Note the §3.1 garbage-collection contract:
  // once every participant acknowledged a commit, the coordinator logs a
  // "done" record and may forget the outcome — queries are a recovery
  // mechanism for in-doubt parties, not a transaction-history API.
  void QueryOutcome(Aid aid, std::function<void(TxnOutcome)> on_done);

  Mid mid() const { return self_; }
  const ClientStats& stats() const { return stats_; }

  // net::FrameHandler
  void OnFrame(const net::Frame& frame) override;

 private:
  friend class ClientTxn;

  struct CacheEntry {
    vr::ViewId viewid;
    vr::View view;
  };

  template <typename M>
  void SendMsg(Mid to, const M& m) {
    net_.Send(self_, to, static_cast<std::uint16_t>(M::kType),
              vr::EncodeMsg(m));
  }
  std::uint64_t NextCorrId() { return next_corr_id_++; }
  std::uint64_t NextCallSeq() {
    return (static_cast<std::uint64_t>(self_) << 32) | next_call_seq_++;
  }

  sim::Task<void> TxnDriver(std::function<sim::Task<bool>(ClientTxn&)> body,
                            std::function<void(TxnOutcome)> on_done);
  sim::Task<std::optional<Aid>> BeginTxn();
  sim::Task<TxnOutcome> CommitTxn(Aid aid, const Pset& pset);
  sim::Task<std::vector<std::uint8_t>> DoCall(ClientTxn& txn, GroupId group,
                                              std::string proc,
                                              std::vector<std::uint8_t> args);
  sim::Task<std::optional<CacheEntry>> CacheLookup(GroupId g);
  sim::Task<TxnOutcome> DoQueryOutcome(Aid aid);

  sim::Simulation& sim_;
  net::Network& net_;
  core::Directory& directory_;
  const Mid self_;
  const GroupId coordinator_group_;
  core::CohortOptions options_;

  std::uint64_t next_corr_id_ = 1;
  std::uint32_t next_call_seq_ = 1;
  std::map<GroupId, CacheEntry> cache_;
  ClientStats stats_;

  core::WaitTable<vr::ReplyMsg> reply_waiters_;
  core::WaitTable<vr::ProbeReplyMsg> probe_waiters_;
  core::WaitTable<vr::BeginTxnReplyMsg> begin_waiters_;
  core::WaitTable<vr::CommitReqReplyMsg> commit_waiters_;
  core::WaitTable<vr::QueryReplyMsg> query_waiters_;
  std::map<Aid, std::uint64_t> query_corr_;

  sim::TaskRegistry tasks_;
};

}  // namespace vsr::client
