#include "client/shard_rebalancer.h"

#include <stdexcept>

namespace vsr::client {

void ShardRebalancer::Move(std::string lo, std::string hi, vr::GroupId to,
                           std::function<void(bool)> done) {
  if (active()) throw std::logic_error("ShardRebalancer: move in progress");
  const core::ShardRange* r = cluster_.directory().Route(lo);
  if (r == nullptr) throw std::logic_error("ShardRebalancer: unplaced range");
  lo_ = std::move(lo);
  hi_ = std::move(hi);
  from_ = r->owner;
  to_ = to;
  done_ = std::move(done);
  ++move_id_;
  move_began_ = cluster_.sim().Now();
  ++stats_.moves_started;
  cluster_.directory().BeginMove(lo_, hi_, to_);
  phase_ = Phase::kBulk;
  StartBulkPull();
}

void ShardRebalancer::StartBulkPull() {
  if (phase_ != Phase::kBulk) return;
  if (DeadlineExceeded()) {
    Finish(false);
    return;
  }
  core::Cohort* dest = cluster_.AnyPrimary(to_);
  if (dest == nullptr) {
    ArmTimer([this] { StartBulkPull(); });
    return;
  }
  ++stats_.bulk_pulls;
  const std::uint64_t id = move_id_;
  dest->PullShard(from_, lo_, hi_, [this, id](bool ok) {
    if (move_id_ != id || phase_ != Phase::kBulk) return;
    if (!ok) {
      // Destination primary changed or the force failed: re-issue at
      // whichever cohort is primary now.
      ArmTimer([this] { StartBulkPull(); });
      return;
    }
    // Image replicated at the new owner: close the old owner's doors and
    // start draining.
    cluster_.directory().BeginHandoff(lo_, hi_);
    handoff_began_ = cluster_.sim().Now();
    phase_ = Phase::kDrain;
    PollDrain();
  });
}

void ShardRebalancer::PollDrain() {
  if (phase_ != Phase::kDrain) return;
  if (DeadlineExceeded()) {
    Finish(false);
    return;
  }
  ++stats_.drain_polls;
  core::Cohort* src = cluster_.AnyPrimary(from_);
  // Strict 2PL: no holders/tentatives/waiters in the range means every
  // transaction that ever touched it here has committed or aborted, and the
  // handoff gate stops new ones — the committed bases are final.
  if (src != nullptr && src->ShardRangeQuiescent(lo_, hi_)) {
    phase_ = Phase::kSettle;
    StartSettlePull();
    return;
  }
  ArmTimer([this] { PollDrain(); });
}

void ShardRebalancer::StartSettlePull() {
  if (phase_ != Phase::kSettle) return;
  if (DeadlineExceeded()) {
    Finish(false);
    return;
  }
  core::Cohort* dest = cluster_.AnyPrimary(to_);
  if (dest == nullptr) {
    ArmTimer([this] { StartSettlePull(); });
    return;
  }
  ++stats_.settle_pulls;
  const std::uint64_t id = move_id_;
  dest->PullShard(from_, lo_, hi_, [this, id](bool ok) {
    if (move_id_ != id || phase_ != Phase::kSettle) return;
    if (!ok) {
      ArmTimer([this] { StartSettlePull(); });
      return;
    }
    // A view change at the old owner between drain and this settle pull
    // could have let fresh transactions in under the pre-handoff placement
    // it no longer checks — quiescence is re-verified after the pull; if it
    // no longer holds, drain again and take another settle pass.
    core::Cohort* src = cluster_.AnyPrimary(from_);
    if (src == nullptr || !src->ShardRangeQuiescent(lo_, hi_)) {
      phase_ = Phase::kDrain;
      ArmTimer([this] { PollDrain(); });
      return;
    }
    Commit();
  });
}

void ShardRebalancer::Commit() {
  cluster_.directory().CommitMove(lo_, hi_);
  stats_.last_handoff_window = cluster_.sim().Now() - handoff_began_;
  // Old owner garbage-collects; best-effort (a missing primary just leaves
  // the dead copy until a later move or drop).
  core::Cohort* src = cluster_.AnyPrimary(from_);
  if (src != nullptr) src->DropShard(lo_, hi_);
  Finish(true);
}

void ShardRebalancer::Finish(bool ok) {
  if (!ok && phase_ != Phase::kIdle) {
    cluster_.directory().CancelMove(lo_, hi_);
    ++stats_.moves_cancelled;
  }
  if (ok) {
    ++stats_.moves_completed;
    stats_.last_move_duration = cluster_.sim().Now() - move_began_;
  }
  CancelTimer();
  phase_ = Phase::kIdle;
  ++move_id_;  // voids in-flight pull callbacks
  auto done = std::move(done_);
  done_ = nullptr;
  if (done) done(ok);
}

void ShardRebalancer::ArmTimer(std::function<void()> fn) {
  CancelTimer();
  timer_ = cluster_.sim().scheduler().After(
      options_.poll_interval, [this, fn = std::move(fn)] {
        timer_ = sim::kNoTimer;
        fn();
      });
}

void ShardRebalancer::CancelTimer() {
  cluster_.sim().scheduler().Cancel(timer_);
  timer_ = sim::kNoTimer;
}

bool ShardRebalancer::DeadlineExceeded() const {
  return options_.move_deadline != 0 &&
         cluster_.sim().Now() - move_began_ > options_.move_deadline;
}

}  // namespace vsr::client
